// Minimal JSON document model for the serving wire protocol (no external
// dependencies — the container bakes in nothing beyond the C++ toolchain).
//
// Scope: exactly what NDJSON request/response framing needs — objects,
// arrays, strings, numbers, booleans, null. Objects preserve insertion
// order so rendered responses are byte-deterministic (the result cache
// stores rendered bytes and promises identical replays). Numbers are
// doubles; rendering tries %.9g (enough for every float widened to double)
// and widens to %.17g only when that loses bits, so every double
// round-trips exactly (serving determinism contract).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace nettag::serve {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  Json(bool b) : type_(Type::kBool), bool_(b) {}            // NOLINT
  Json(double n) : type_(Type::kNumber), num_(n) {}         // NOLINT
  Json(int n) : type_(Type::kNumber), num_(n) {}            // NOLINT
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : type_(Type::kString), str_(s) {}    // NOLINT

  static Json object();
  static Json array();

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_bool() const { return type_ == Type::kBool; }

  // --- readers (lenient: wrong-type access returns the fallback; callers
  // that must distinguish "absent/mistyped" from "default value" check
  // is_*() first — parse_request rejects mistyped request fields) ----------
  std::string as_string(const std::string& fallback = "") const;
  /// NaN returns the fallback; +/-Inf (strtod overflow on hostile inputs)
  /// saturates to +/-DBL_MAX so downstream range checks stay well-defined.
  double as_number(double fallback = 0.0) const;
  /// NaN returns the fallback; values beyond long long saturate to
  /// LLONG_MIN/LLONG_MAX (the raw cast would be undefined behavior).
  long long as_int(long long fallback = 0) const;
  bool as_bool(bool fallback = false) const;

  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(const std::string& key) const;

  const std::vector<Json>& items() const { return arr_; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return obj_;
  }

  // --- builders ------------------------------------------------------------
  /// Appends (or replaces) an object member. No-op unless object-typed.
  Json& set(const std::string& key, Json value);
  /// Appends an array element. No-op unless array-typed.
  Json& push_back(Json value);

  /// Compact single-line rendering (no whitespace), suitable for NDJSON.
  std::string dump() const;

  /// Parses one JSON document (trailing whitespace allowed, nothing else).
  /// Returns false and fills *error on malformed input; *out is unspecified
  /// then. Nesting deeper than 64 levels is rejected (adversarial inputs
  /// must not blow the stack).
  static bool parse(const std::string& text, Json* out, std::string* error);

 private:
  void dump_to(std::string* out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

/// Renders a double so the value round-trips exactly: integral values print
/// as integers; everything else tries %.9g (exact for floats widened to
/// double) and falls back to %.17g when that loses bits. Non-finite values
/// render as null. Shared by Json::dump and the hand-rolled matrix rendering.
std::string json_number(double v);

}  // namespace nettag::serve
