// NetTAG-Serve wire protocol: newline-delimited JSON requests/responses
// (docs/ARCHITECTURE.md §7.1 gives the grammar).
//
// Request line:
//   {"id":"r1","op":"embed_gates","netlist":"module m ...\n...endmodule\n",
//    "k_hop":2,"max_cone_gates":120,"task":"task2"}
//
//   op ∈ ping | stats | shutdown | reload | embed_gates | embed_cone
//        | embed_circuit | predict. `netlist` carries the structural format
//   of netlist/io.hpp inside one JSON string; `k_hop` (0 = model default),
//   `max_cone_gates` (embed_circuit cone cap), `task` (predict head name)
//   and `model_prefix` (reload checkpoint override) are optional.
//
// Response line (ok):
//   {"id":"r1","op":"embed_gates","status":"ok","cached":false,"result":{...}}
// Response line (error):
//   {"id":"r1","op":"embed_gates","status":"error",
//    "error":{"code":"lint_rejected","message":"...","detail":[...]}}
//
// Embedding results are *name-free* (matrices only): the result cache is
// content-addressed over the canonical structural hash, so an isomorphic
// resubmission under different instance names replays the identical bytes.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"
#include "serve/json.hpp"

namespace nettag {
class Netlist;
}

namespace nettag::serve {

enum class Op {
  kInvalid,  ///< unparseable line or unknown op; carries the parse error
  kPing,
  kStats,
  kShutdown,
  kReload,  ///< hot-swap the model from a checkpoint prefix, no downtime
  kEmbedGates,
  kEmbedCone,
  kEmbedCircuit,
  kPredict,
};

const char* op_name(Op op);

/// Structured error taxonomy (docs/ARCHITECTURE.md §7.3). Every failure is a
/// per-request status — the daemon itself never exits nonzero on bad input.
enum class ErrorCode {
  kNone,
  kBadJson,       ///< line is not a JSON object
  kBadRequest,    ///< JSON fine; missing/unknown op or missing fields
  kParseError,    ///< netlist text failed to parse (unknown cells included)
  kTooLarge,      ///< netlist exceeds the admission gate size bound
  kLintRejected,  ///< src/analysis admission gate found errors
  kUnknownTask,   ///< predict against an unregistered task head
  kReloadFailed,  ///< reload checkpoint missing/corrupt; old model kept
  kTooBusy,       ///< shard queue full — load shed, retry later (src/net)
  kInternal,      ///< unexpected exception (bug) — reported, not fatal
};

const char* error_code_name(ErrorCode code);

struct Request {
  std::string id;
  Op op = Op::kInvalid;
  std::string netlist_text;         ///< netlist/io.hpp structural format
  int k_hop = 0;                    ///< 0 = model default
  std::size_t max_cone_gates = 120; ///< embed_circuit cone cap
  std::string task;                 ///< predict: registered head name
  std::string model_prefix;         ///< reload: checkpoint prefix override
  /// Filled by parse_request when the line itself is bad; process() echoes
  /// these back instead of doing work.
  ErrorCode parse_error = ErrorCode::kNone;
  std::string parse_message;
  /// Stamped at submission; request latency = completion - t_start.
  std::chrono::steady_clock::time_point t_start{};
  /// Daemon-internal (never on the wire): the router of src/net parses the
  /// netlist once to compute the shard route hash and passes the parsed
  /// structure along, so the shard worker does not parse the text a second
  /// time. Null on the stdin / in-process paths — process() parses then.
  std::shared_ptr<const Netlist> pre_parsed;
};

struct Response {
  std::string id;
  Op op = Op::kInvalid;
  ErrorCode error = ErrorCode::kNone;
  std::string error_message;
  std::vector<std::string> detail;  ///< e.g. lint diagnostics, one per line
  /// Rendered result object ("{"..."}") for ok responses; exactly these
  /// bytes are stored in / replayed from the result cache.
  std::string result_json;
  bool cached = false;

  bool ok() const { return error == ErrorCode::kNone; }
};

/// Parses one NDJSON line. Never fails hard: malformed lines come back with
/// op == kInvalid and parse_error/parse_message set, so the uniform batching
/// path also carries the error responses.
Request parse_request(const std::string& line);

/// Renders one response line (no trailing newline).
std::string render_response(const Response& response);

/// Renders a matrix as {"rows":R,"cols":C,"data":[...]} with float-exact
/// numbers (%.9g round-trips every float).
std::string mat_to_json(const Mat& m);

/// Parses mat_to_json output back into a Mat (testing / client side).
/// Returns false on shape/data mismatch.
bool mat_from_json(const Json& j, Mat* out);

}  // namespace nettag::serve
