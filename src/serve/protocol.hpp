// NetTAG-Serve wire protocol v2: newline-delimited JSON requests/responses
// (docs/ARCHITECTURE.md §7.1 gives the grammar, §12 the replica registry).
//
// Request line:
//   {"id":"r1","op":"embed_gates","netlist":"module m ...\n...endmodule\n",
//    "k_hop":2,"max_cone_gates":120,"model":"default","task":"task2"}
//
//   op ∈ ping | stats | shutdown | reload | model_load | model_unload
//        | model_list | embed_gates | embed_cone | embed_circuit | predict.
//
//   Fields (all optional unless an op requires them; every field is typed
//   and op-scoped by the kFieldSpecs table in protocol.cpp, and an unknown
//   field on a known op is rejected as bad_request naming the field):
//     id             any op        echoed back verbatim
//     netlist        netlist ops*  netlist/io.hpp structural format in one
//                                  JSON string (required)
//     k_hop          netlist ops   expression depth, integer in [0,16]
//                                  (0 = model default)
//     max_cone_gates netlist ops   embed_circuit cone cap, integer >= 1
//                                  (absent = server default, see `stats`
//                                  "defaults" and ServerConfig)
//     task           predict       registered head name (required)
//     model          netlist ops, reload, model_load, model_unload —
//                                  target replica name; absent = "default".
//                                  Unknown names answer `unknown_model`.
//     model_prefix   reload, model_load — checkpoint prefix (required for
//                                  model_load; reload falls back to the
//                                  replica's own startup/load prefix)
//     quantize       model_load    bool: serve the replica on the int8
//                                  packed-weight path (absent = the
//                                  process-wide --quantize default)
//   (*netlist ops = embed_gates | embed_cone | embed_circuit | predict)
//
//   Admin ops: `model_load` registers/replaces a named replica from a
//   checkpoint prefix, `model_unload` removes one (in-flight and queued
//   requests for it answer `unknown_model`), `model_list` reports every
//   replica. `reload` hot-swaps one replica (absent `model` = "default") —
//   a v1 line without `model` behaves exactly as the v1 single-model server.
//
// Response line (ok):
//   {"id":"r1","op":"embed_gates","status":"ok","cached":false,"result":{...}}
// Response line (error):
//   {"id":"r1","op":"embed_gates","status":"error",
//    "error":{"code":"lint_rejected","message":"...","detail":[...]}}
//
// Embedding results are *name-free* (matrices only): the result cache is
// content-addressed over the canonical structural hash, so an isomorphic
// resubmission under different instance names replays the identical bytes.
// Each replica's cache keys carry its name and weights CRC, so replicas
// never replay each other's results.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"
#include "serve/json.hpp"

namespace nettag {
class Netlist;
}

namespace nettag::serve {

enum class Op {
  kInvalid,  ///< unparseable line or unknown op; carries the parse error
  kPing,
  kStats,
  kShutdown,
  kReload,       ///< hot-swap one replica from a checkpoint prefix, no downtime
  kModelLoad,    ///< register (or replace) a named replica from a checkpoint
  kModelUnload,  ///< remove a named replica; its requests answer unknown_model
  kModelList,    ///< list the registered replicas
  kEmbedGates,
  kEmbedCone,
  kEmbedCircuit,
  kPredict,
};

const char* op_name(Op op);

/// True for the ops that carry a netlist and run model work (embed_gates /
/// embed_cone / embed_circuit / predict). These are the sheddable ops: the
/// daemon's shards may answer them `too_busy` under load, and they route by
/// structural hash for cache affinity (src/net/shard.cpp).
bool is_netlist_op(Op op);

/// True for the observability/admin ops (ping, stats, shutdown, reload and
/// the model_* family). Control ops are never shed — an operator must always
/// be able to observe, reconfigure, and drain a saturated daemon.
bool is_control_op(Op op);

/// Structured error taxonomy (docs/ARCHITECTURE.md §7.3). Every failure is a
/// per-request status — the daemon itself never exits nonzero on bad input.
enum class ErrorCode {
  kNone,
  kBadJson,       ///< line is not a JSON object
  kBadRequest,    ///< JSON fine; missing/unknown op or missing fields
  kParseError,    ///< netlist text failed to parse (unknown cells included)
  kTooLarge,      ///< netlist exceeds the admission gate size bound
  kLintRejected,  ///< src/analysis admission gate found errors
  kUnknownTask,   ///< predict against an unregistered task head
  kUnknownModel,  ///< request named a replica the registry does not hold
  kReloadFailed,  ///< reload/model_load checkpoint missing/corrupt; no swap
  kTooBusy,       ///< shard queue full — load shed, retry later (src/net)
  kInternal,      ///< unexpected exception (bug) — reported, not fatal
};

const char* error_code_name(ErrorCode code);

/// The one authoritative default for the embed_circuit cone cap. Request
/// carries 0 for "absent" and the server resolves it against its config
/// (which defaults to this constant) — the value used to be hardcoded in
/// two places and they could drift.
inline constexpr std::size_t kDefaultMaxConeGates = 120;

/// The replica every v1 request (no "model" field) targets.
inline constexpr const char* kDefaultModelName = "default";

struct Request {
  std::string id;
  Op op = Op::kInvalid;
  std::string netlist_text;        ///< netlist/io.hpp structural format
  int k_hop = 0;                   ///< 0 = model default
  std::size_t max_cone_gates = 0;  ///< embed_circuit cone cap; 0 = server
                                   ///< default (ServerConfig::max_cone_gates)
  std::string task;                ///< predict: registered head name
  std::string model;               ///< target replica; "" = kDefaultModelName
  std::string model_prefix;        ///< reload/model_load: checkpoint prefix
  int quantize = -1;               ///< model_load: -1 absent, else 0/1
  /// Filled by parse_request when the line itself is bad; process() echoes
  /// these back instead of doing work.
  ErrorCode parse_error = ErrorCode::kNone;
  std::string parse_message;
  /// Stamped at submission; request latency = completion - t_start.
  std::chrono::steady_clock::time_point t_start{};
  /// Daemon-internal (never on the wire): the router of src/net parses the
  /// netlist once to compute the shard route hash and passes the parsed
  /// structure along, so the shard worker does not parse the text a second
  /// time. Null on the stdin / in-process paths — process() parses then.
  std::shared_ptr<const Netlist> pre_parsed;
};

struct Response {
  std::string id;
  Op op = Op::kInvalid;
  ErrorCode error = ErrorCode::kNone;
  std::string error_message;
  std::vector<std::string> detail;  ///< e.g. lint diagnostics, one per line
  /// Rendered result object ("{"..."}") for ok responses; exactly these
  /// bytes are stored in / replayed from the result cache.
  std::string result_json;
  bool cached = false;

  bool ok() const { return error == ErrorCode::kNone; }
};

/// Parses one NDJSON line. Never fails hard: malformed lines come back with
/// op == kInvalid and parse_error/parse_message set, so the uniform batching
/// path also carries the error responses.
Request parse_request(const std::string& line);

/// Renders one response line (no trailing newline).
std::string render_response(const Response& response);

/// Renders a matrix as {"rows":R,"cols":C,"data":[...]} with float-exact
/// numbers (%.9g round-trips every float).
std::string mat_to_json(const Mat& m);

/// Parses mat_to_json output back into a Mat (testing / client side).
/// Returns false on shape/data mismatch.
bool mat_from_json(const Json& j, Mat* out);

}  // namespace nettag::serve
