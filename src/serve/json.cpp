#include "serve/json.hpp"

#include <cctype>
#include <cfloat>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "analysis/diagnostic.hpp"  // json_escape

namespace nettag::serve {

Json Json::object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

Json Json::array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

std::string Json::as_string(const std::string& fallback) const {
  return type_ == Type::kString ? str_ : fallback;
}

double Json::as_number(double fallback) const {
  if (type_ != Type::kNumber) return fallback;
  // The parser itself never produces non-finite values (strtod overflow
  // yields HUGE_VAL, which callers must not treat as a usable quantity);
  // NaN falls back, infinities saturate to the largest finite double so
  // range checks downstream stay well-defined.
  if (std::isnan(num_)) return fallback;
  if (std::isinf(num_)) return num_ > 0 ? DBL_MAX : -DBL_MAX;
  return num_;
}

long long Json::as_int(long long fallback) const {
  if (type_ != Type::kNumber) return fallback;
  // Casting a double outside [LLONG_MIN, LLONG_MAX] (or NaN) to long long is
  // undefined behavior, and hostile request lines can carry 1e300 — saturate
  // instead. 2^63 is exactly representable as a double, so >= is the right
  // upper comparison (LLONG_MAX itself rounds up to 2^63 when widened).
  if (std::isnan(num_)) return fallback;
  if (num_ >= 9223372036854775808.0 /* 2^63 */) return LLONG_MAX;
  if (num_ < -9223372036854775808.0 /* -2^63 */) return LLONG_MIN;
  return static_cast<long long>(num_);
}

bool Json::as_bool(bool fallback) const {
  return type_ == Type::kBool ? bool_ : fallback;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Json& Json::set(const std::string& key, Json value) {
  if (type_ != Type::kObject) return *this;
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(key, std::move(value));
  return *this;
}

Json& Json::push_back(Json value) {
  if (type_ == Type::kArray) arr_.push_back(std::move(value));
  return *this;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no NaN/Inf
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  // %.9g round-trips every float widened to double (the embedding payload
  // case), but genuine doubles — int8 dequantization scales, drift ratios —
  // need up to 17 significant digits. Pay for them only when 9 are lossy.
  if (std::strtod(buf, nullptr) != v) {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

void Json::dump_to(std::string* out) const {
  switch (type_) {
    case Type::kNull:
      *out += "null";
      return;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      return;
    case Type::kNumber:
      *out += json_number(num_);
      return;
    case Type::kString:
      *out += '"';
      *out += json_escape(str_);
      *out += '"';
      return;
    case Type::kArray: {
      *out += '[';
      bool first = true;
      for (const Json& item : arr_) {
        if (!first) *out += ',';
        first = false;
        item.dump_to(out);
      }
      *out += ']';
      return;
    }
    case Type::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) *out += ',';
        first = false;
        *out += '"';
        *out += json_escape(k);
        *out += "\":";
        v.dump_to(out);
      }
      *out += '}';
      return;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(&out);
  return out;
}

// --- parser ------------------------------------------------------------------

namespace {

constexpr int kMaxDepth = 64;

struct Parser {
  const char* p;
  const char* end;
  std::string error;

  bool fail(const std::string& msg) {
    if (error.empty()) error = msg;
    return false;
  }

  void skip_ws() {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' || *p == '\r')) {
      ++p;
    }
  }

  bool literal(const char* text) {
    const char* q = text;
    const char* save = p;
    while (*q) {
      if (p >= end || *p != *q) {
        p = save;
        return false;
      }
      ++p;
      ++q;
    }
    return true;
  }

  bool parse_string(std::string* out) {
    if (p >= end || *p != '"') return fail("expected string");
    ++p;
    out->clear();
    while (p < end && *p != '"') {
      char c = *p++;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p >= end) return fail("truncated escape");
      char e = *p++;
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (end - p < 4) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = *p++;
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are rendered as
          // two 3-byte sequences — the protocol never emits them itself).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xc0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out->push_back(static_cast<char>(0xe0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    if (p >= end) return fail("unterminated string");
    ++p;  // closing quote
    return true;
  }

  bool parse_value(Json* out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (p >= end) return fail("unexpected end of input");
    const char c = *p;
    if (c == '{') {
      ++p;
      *out = Json::object();
      skip_ws();
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      for (;;) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return false;
        skip_ws();
        if (p >= end || *p != ':') return fail("expected ':' in object");
        ++p;
        Json value;
        if (!parse_value(&value, depth + 1)) return false;
        out->set(key, std::move(value));
        skip_ws();
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        if (p < end && *p == '}') {
          ++p;
          return true;
        }
        return fail("expected ',' or '}' in object");
      }
    }
    if (c == '[') {
      ++p;
      *out = Json::array();
      skip_ws();
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      for (;;) {
        Json value;
        if (!parse_value(&value, depth + 1)) return false;
        out->push_back(std::move(value));
        skip_ws();
        if (p < end && *p == ',') {
          ++p;
          continue;
        }
        if (p < end && *p == ']') {
          ++p;
          return true;
        }
        return fail("expected ',' or ']' in array");
      }
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(&s)) return false;
      *out = Json(std::move(s));
      return true;
    }
    if (literal("true")) {
      *out = Json(true);
      return true;
    }
    if (literal("false")) {
      *out = Json(false);
      return true;
    }
    if (literal("null")) {
      *out = Json();
      return true;
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      char* after = nullptr;
      const double v = std::strtod(p, &after);
      if (after == p || after > end) return fail("bad number");
      p = after;
      *out = Json(v);
      return true;
    }
    return fail(std::string("unexpected character '") + c + "'");
  }
};

}  // namespace

bool Json::parse(const std::string& text, Json* out, std::string* error) {
  Parser parser{text.data(), text.data() + text.size(), {}};
  if (!parser.parse_value(out, 0)) {
    if (error) *error = parser.error;
    return false;
  }
  parser.skip_ws();
  if (parser.p != parser.end) {
    if (error) *error = "trailing characters after JSON document";
    return false;
  }
  return true;
}

}  // namespace nettag::serve
