// Live serving metrics behind the `stats` request (docs/ARCHITECTURE.md
// §7.4): QPS, latency percentiles, batch-size histogram, and per-stage CPU
// time. Everything is recorded under one short-held mutex — the recording
// paths are a few arithmetic ops, far below the model work they annotate.
//
// Latency percentiles come from a bounded ring of the most recent
// completions (p50/p99 of "recent" traffic is what an operator watches; an
// unbounded record would grow forever), while counts/QPS cover the full
// uptime.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "serve/json.hpp"

namespace nettag::serve {

/// Pipeline stages the server attributes time to (§7.4). kParse is netlist
/// text parsing; the three model stages come from EmbedTiming.
enum class Stage { kParse, kLint, kTagBuild, kTextEncode, kTagFormer };
constexpr int kNumStages = 5;
const char* stage_name(Stage stage);

class ServeMetrics {
 public:
  /// Ring size for latency percentiles (most recent completions).
  static constexpr std::size_t kLatencyWindow = 4096;

  ServeMetrics() : start_(std::chrono::steady_clock::now()) {}

  void record_request(bool ok, double latency_seconds);
  void record_batch(std::size_t size);
  void record_stage(Stage stage, double seconds);

  struct Snapshot {
    double uptime_seconds = 0;
    std::uint64_t requests_total = 0;
    std::uint64_t requests_ok = 0;
    std::uint64_t requests_error = 0;
    double qps = 0;          ///< requests_total / uptime
    double p50_ms = 0, p90_ms = 0, p99_ms = 0, max_ms = 0;
    std::uint64_t batches = 0;
    /// (batch size, occurrence count), ascending by size.
    std::vector<std::pair<std::size_t, std::uint64_t>> batch_histogram;
    double stage_seconds[kNumStages] = {0, 0, 0, 0, 0};
  };

  Snapshot snapshot() const;

 private:
  const std::chrono::steady_clock::time_point start_;
  mutable std::mutex mu_;
  std::uint64_t total_ = 0, ok_ = 0, errors_ = 0, batches_ = 0;
  std::vector<double> latency_ring_;  ///< seconds, ring of kLatencyWindow
  std::size_t ring_next_ = 0;
  double max_latency_ = 0;
  std::vector<std::uint64_t> batch_hist_;  ///< index = batch size
  double stage_seconds_[kNumStages] = {0, 0, 0, 0, 0};
};

/// Snapshot -> the `stats` result object (minus cache sections, which the
/// server appends from its caches).
Json snapshot_to_json(const ServeMetrics::Snapshot& snapshot);

}  // namespace nettag::serve
