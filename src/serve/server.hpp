// NetTAG-Serve: the inference server (docs/ARCHITECTURE.md §7, §12).
//
// Dispatches requests over a registry of named NetTag replicas through four
// coordinated pieces:
//   * registry  — N independently hot-reloadable models behind one process
//     (serve/registry.hpp); every request pins a replica snapshot, so
//     reload/unload of one replica never stalls another's traffic;
//   * admission — parse + size bound + src/analysis lint gate
//     (serve/admission.hpp); rejected inputs become structured error
//     responses, never crashes;
//   * batching  — concurrent requests group into one thread-pool region
//     (serve/batcher.hpp);
//   * caching   — a bounded content-addressed result cache keyed by the
//     canonical structural hash (serve/canonical.hpp) namespaced per
//     replica+weights+backend, so isomorphic resubmissions replay
//     byte-identical results without model work and replicas never replay
//     each other's entries.
//
// The same object backs both transports: the in-process C++ client API
// (submit / submit_async, used by tests and benches) and the NDJSON
// stdin/stdout loop of tools/nettag_serve (submit_line_async +
// render_response).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "core/nettag.hpp"
#include "serve/admission.hpp"
#include "serve/batcher.hpp"
#include "serve/cache.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"

namespace nettag::serve {

struct ServerConfig {
  /// Admission bound: netlists above this many gates get kTooLarge.
  std::size_t max_gates = 20000;
  /// Result cache bound (entries; each entry is one rendered result).
  std::size_t cache_entries = 256;
  /// Largest request group one batch may take.
  std::size_t max_batch = 32;
  /// Strict admission: reject on lint *warnings* too (errors always reject).
  bool reject_warnings = false;
  /// Admission lint options (rule toggles, fanout bound).
  LintOptions lint;
  /// Effective default for requests that carry no `max_cone_gates` of their
  /// own (the embed_circuit cone cap). Echoed in `stats` under "defaults".
  std::size_t max_cone_gates = kDefaultMaxConeGates;
  /// Shared text-embedding cache layout, applied when the first replica
  /// donates its cache to the registry: capacity in entries (0 = keep the
  /// model's own, typically the checkpoint default) and stripe count (0 =
  /// keep; the daemon passes its shard count so workers don't serialize on
  /// one cache mutex). Reload/model_load attach later models to the same
  /// cache, so the layout survives every swap.
  std::size_t text_cache_entries = 0;
  std::size_t text_cache_partitions = 0;
  /// Default checkpoint prefix for `reload` requests that carry no
  /// `model_prefix` of their own (typically the prefix the server was
  /// started from); it becomes the "default" replica's stored prefix.
  /// Empty: such requests are rejected.
  std::string model_prefix;
  /// Serve the int8 packed-weight path (nn/packed.hpp) for the "default"
  /// replica, and for every `model_load` that carries no `quantize` of its
  /// own: weight matrices are repacked at load and after every reload, and
  /// matmul forwards run int8 dot products instead of fp32. The fp32
  /// weights (and the weights CRC) are untouched; `stats` reports each
  /// replica's backend and the result-cache key separates int8 results
  /// from fp32 ones.
  bool quantize = false;
};

class Server {
 public:
  /// Starts with an empty registry — replicas arrive via load_model /
  /// `model_load` (tools/nettag_serve builds its servers this way, one
  /// load_model per --model flag). Netlist requests before the first load
  /// answer unknown_model; control ops work immediately.
  explicit Server(ServerConfig config);
  /// Takes ownership of a constructed (typically checkpoint-loaded) model,
  /// registered as the "default" replica (the one every v1 request targets)
  /// with config.model_prefix as its reload target and config.quantize as
  /// its backend.
  Server(ServerConfig config, std::unique_ptr<NetTag> model);
  ~Server();

  /// Owning snapshot of one replica's current model (null: no replica under
  /// that name). Safe to hold across reloads/unloads — the snapshot keeps
  /// serving the generation it pinned; drop it to release the weights.
  std::shared_ptr<const NetTag> model_snapshot(
      const std::string& name = kDefaultModelName) const;

  /// Registers (or replaces) a named replica from a checkpoint prefix — the
  /// startup-time twin of the `model_load` op (tools/nettag_serve wires
  /// repeated --model flags through this). `quantize` < 0 inherits the
  /// config default. False with *error set on a bad checkpoint.
  bool load_model(const std::string& name, const std::string& prefix,
                  int quantize, std::string* error);
  /// Removes a named replica; later requests for it answer unknown_model.
  bool unload_model(const std::string& name);

  const ModelRegistry& registry() const { return registry_; }
  const ServerConfig& config() const { return config_; }
  /// Number of successful `reload` ops since startup (all replicas).
  std::uint64_t reloads() const { return registry_.total_reloads(); }

  /// Fine-tuned task head hook: `fn` maps (shared model, admitted netlist)
  /// to a score vector. Registered heads answer `predict` requests; results
  /// are cached under the task name. `fn` must be thread-safe (heads only
  /// read their trained weights).
  using TaskFn =
      std::function<std::vector<double>(const NetTag&, const Netlist&)>;
  void register_task(const std::string& name, TaskFn fn);

  // --- in-process client API ----------------------------------------------
  std::future<Response> submit_async(Request request);
  Response submit(Request request) { return submit_async(std::move(request)).get(); }

  // --- wire API (NDJSON lines) --------------------------------------------
  /// Parses one request line and enqueues it; malformed lines resolve to
  /// structured error responses through the same path.
  std::future<Response> submit_line_async(const std::string& line);
  /// Convenience: parse, process, render one line synchronously.
  std::string handle_line(const std::string& line);

  // --- shard API (src/net daemon) -----------------------------------------
  /// Synchronous per-request processing against an explicit result-cache
  /// partition — the socket daemon's shard workers call this directly, each
  /// with its own partition, so isomorphic resubmissions routed to the same
  /// shard hit that shard's cache (docs/ARCHITECTURE.md §11). `cache` null
  /// falls back to the server's own cache. Thread-safe; any number of shard
  /// workers may call concurrently (the model's inference API is const, the
  /// metrics and caches are internally synchronized).
  Response process_on(const Request& request, ResultCache* cache);

  /// Appends daemon-owned sections (transport/shard counters) to the JSON a
  /// `stats` request returns. Set once, before traffic (src/net wires this
  /// at daemon start); the hook runs under the same snapshot as the rest of
  /// the stats object and must be thread-safe.
  using StatsExtension = std::function<void(Json*)>;
  void set_stats_extension(StatsExtension fn);

  /// The `stats` result object as a string (also the final-metrics line the
  /// daemon emits on drain).
  std::string stats_json() const;

  /// Set once a shutdown request is processed; the stdio loop exits cleanly.
  bool shutdown_requested() const;

  ServeMetrics& metrics() { return metrics_; }
  ResultCache& cache() { return cache_; }
  /// Test hook for deterministic batch formation (Batcher::pause/resume).
  Batcher& batcher() { return *batcher_; }

 private:
  /// Per-request handler: replica resolution, admission, cache, model work.
  /// Runs on pool workers; everything it touches is internally synchronized.
  Response process(const Request& request);
  /// The model-work stage against an explicit replica snapshot — the
  /// snapshot's weights CRC + backend namespace the cache keys, so entries
  /// computed by one replica (or one weight generation) can never answer
  /// for another; a reload that lands the *same* weights keeps every entry
  /// valid, while new weights strand the old ones (they age out via LRU).
  Response process_netlist_op(const Request& request,
                              const ReplicaSnapshot& replica,
                              ResultCache* cache);
  Response process_reload(const Request& request);
  Response process_model_admin(const Request& request);

  ServerConfig config_;
  ModelRegistry registry_;
  ServeMetrics metrics_;
  Admission admission_;
  ResultCache cache_;

  mutable std::mutex tasks_mu_;
  std::map<std::string, TaskFn> tasks_;

  mutable std::mutex stats_ext_mu_;
  StatsExtension stats_ext_;

  std::atomic<bool> shutdown_{false};
  std::unique_ptr<Batcher> batcher_;  ///< last member: first destroyed
};

}  // namespace nettag::serve
