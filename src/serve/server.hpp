// NetTAG-Serve: the inference server (docs/ARCHITECTURE.md §7).
//
// Owns one shared pre-trained NetTag model and answers embedding / task
// prediction requests through three coordinated pieces:
//   * admission — parse + size bound + src/analysis lint gate; rejected
//     inputs become structured error responses, never crashes;
//   * batching  — concurrent requests group into one thread-pool region
//     (serve/batcher.hpp);
//   * caching   — a bounded content-addressed result cache keyed by the
//     canonical structural hash (serve/canonical.hpp), so isomorphic
//     resubmissions replay byte-identical results without model work.
//
// The same object backs both transports: the in-process C++ client API
// (submit / submit_async, used by tests and benches) and the NDJSON
// stdin/stdout loop of tools/nettag_serve (submit_line_async +
// render_response).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "core/nettag.hpp"
#include "serve/batcher.hpp"
#include "serve/cache.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"

namespace nettag::serve {

struct ServerConfig {
  /// Admission bound: netlists above this many gates get kTooLarge.
  std::size_t max_gates = 20000;
  /// Result cache bound (entries; each entry is one rendered result).
  std::size_t cache_entries = 256;
  /// Largest request group one batch may take.
  std::size_t max_batch = 32;
  /// Strict admission: reject on lint *warnings* too (errors always reject).
  bool reject_warnings = false;
  /// Admission lint options (rule toggles, fanout bound).
  LintOptions lint;
  /// Default checkpoint prefix for `reload` requests that carry no
  /// `model_prefix` of their own (typically the prefix the server was
  /// started from). Empty: such requests are rejected.
  std::string model_prefix;
  /// Serve the int8 packed-weight path (nn/packed.hpp): weight matrices are
  /// repacked at construction and after every reload, and matmul forwards
  /// run int8 dot products instead of fp32. The fp32 weights (and the
  /// weights CRC) are untouched; `stats` reports the active backend and the
  /// result-cache key separates int8 results from fp32 ones.
  bool quantize = false;
};

class Server {
 public:
  /// Takes ownership of a constructed (typically checkpoint-loaded) model.
  Server(ServerConfig config, std::unique_ptr<NetTag> model);
  ~Server();

  /// Current model. The reference stays valid until the *next* reload
  /// completes (the server retains the swapped-out model until then), so
  /// transient use is safe; don't hold it across reloads.
  const NetTag& model() const;
  const ServerConfig& config() const { return config_; }
  /// Number of successful `reload` ops since startup.
  std::uint64_t reloads() const { return reloads_.load(std::memory_order_relaxed); }

  /// Fine-tuned task head hook: `fn` maps (shared model, admitted netlist)
  /// to a score vector. Registered heads answer `predict` requests; results
  /// are cached under the task name. `fn` must be thread-safe (heads only
  /// read their trained weights).
  using TaskFn =
      std::function<std::vector<double>(const NetTag&, const Netlist&)>;
  void register_task(const std::string& name, TaskFn fn);

  // --- in-process client API ----------------------------------------------
  std::future<Response> submit_async(Request request);
  Response submit(Request request) { return submit_async(std::move(request)).get(); }

  // --- wire API (NDJSON lines) --------------------------------------------
  /// Parses one request line and enqueues it; malformed lines resolve to
  /// structured error responses through the same path.
  std::future<Response> submit_line_async(const std::string& line);
  /// Convenience: parse, process, render one line synchronously.
  std::string handle_line(const std::string& line);

  // --- shard API (src/net daemon) -----------------------------------------
  /// Synchronous per-request processing against an explicit result-cache
  /// partition — the socket daemon's shard workers call this directly, each
  /// with its own partition, so isomorphic resubmissions routed to the same
  /// shard hit that shard's cache (docs/ARCHITECTURE.md §11). `cache` null
  /// falls back to the server's own cache. Thread-safe; any number of shard
  /// workers may call concurrently (the model's inference API is const, the
  /// metrics and caches are internally synchronized).
  Response process_on(const Request& request, ResultCache* cache);

  /// Appends daemon-owned sections (transport/shard counters) to the JSON a
  /// `stats` request returns. Set once, before traffic (src/net wires this
  /// at daemon start); the hook runs under the same snapshot as the rest of
  /// the stats object and must be thread-safe.
  using StatsExtension = std::function<void(Json*)>;
  void set_stats_extension(StatsExtension fn);

  /// The `stats` result object as a string (also the final-metrics line the
  /// daemon emits on drain).
  std::string stats_json() const;

  /// Set once a shutdown request is processed; the stdio loop exits cleanly.
  bool shutdown_requested() const;

  ServeMetrics& metrics() { return metrics_; }
  ResultCache& cache() { return cache_; }
  /// Test hook for deterministic batch formation (Batcher::pause/resume).
  Batcher& batcher() { return *batcher_; }

 private:
  /// One model generation: the shared instance plus the CRC-32 of its
  /// parameters. The CRC is folded into every result-cache key, so entries
  /// computed by one set of weights can never answer for another — a reload
  /// that lands the *same* weights keeps every cache entry valid, while new
  /// weights make the old entries unreachable (they age out via LRU).
  struct ModelGen {
    std::shared_ptr<NetTag> model;
    std::uint32_t params_crc = 0;
  };
  ModelGen snapshot() const;

  /// Per-request handler: admission, cache, model work. Runs on pool
  /// workers; everything it touches is internally synchronized.
  Response process(const Request& request);
  Response process_netlist_op(const Request& request, ResultCache* cache);
  Response process_reload(const Request& request);

  ServerConfig config_;
  /// Guards the generation swap only; requests work on their own snapshot,
  /// so a reload never blocks or invalidates in-flight work.
  mutable std::mutex model_mu_;
  ModelGen gen_;
  /// Previous generation, kept so references from model() survive one swap.
  std::shared_ptr<NetTag> prev_model_;
  /// Serializes whole reload operations (checkpoint load outside model_mu_).
  std::mutex reload_mu_;
  std::atomic<std::uint64_t> reloads_{0};
  ServeMetrics metrics_;
  ResultCache cache_;

  mutable std::mutex tasks_mu_;
  std::map<std::string, TaskFn> tasks_;

  mutable std::mutex stats_ext_mu_;
  StatsExtension stats_ext_;

  std::atomic<bool> shutdown_{false};
  std::unique_ptr<Batcher> batcher_;  ///< last member: first destroyed
};

}  // namespace nettag::serve
