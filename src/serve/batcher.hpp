// Request batcher: groups concurrent submissions into one parallel region
// over the shared thread pool (docs/ARCHITECTURE.md §7.2).
//
// Callers enqueue requests from any thread and get a future; one worker
// thread drains the queue in arrival order, taking everything pending (up
// to max_batch) as a batch and fanning the per-request handler out with
// ThreadPool::run_indexed. The batcher worker is therefore the *only*
// concurrent caller of run_indexed in the daemon — the pool's single-job
// design is respected — and handlers that themselves use the pool (every
// model forward does) nest inline per the pool's in_worker() contract, so
// batched results are bit-identical to sequential execution.
//
// Under light traffic batches are size 1 and latency is unchanged; under
// concurrent load the queue naturally fills while the previous batch
// computes, so throughput approaches pool-width parallelism without any
// artificial batching delay.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>

#include "serve/protocol.hpp"

namespace nettag::serve {

class Batcher {
 public:
  using Handler = std::function<Response(const Request&)>;
  using BatchObserver = std::function<void(std::size_t)>;  ///< batch size

  /// `handler` runs per request, possibly on pool workers, and must be
  /// thread-safe; exceptions it leaks become kInternal responses.
  Batcher(Handler handler, std::size_t max_batch,
          BatchObserver observer = nullptr);

  /// Drains the queue, then joins the worker. Outstanding futures are
  /// always fulfilled.
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Thread-safe enqueue; the future resolves when the batch containing
  /// this request completes.
  std::future<Response> submit(Request request);

  /// Test hook: while paused the worker leaves the queue untouched, so a
  /// burst of submits deterministically forms one batch on resume().
  void pause();
  void resume();

 private:
  struct Pending {
    Request request;
    std::promise<Response> promise;
  };

  void worker_loop();

  const Handler handler_;
  const BatchObserver observer_;
  const std::size_t max_batch_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stop_ = false;
  bool paused_ = false;
  std::thread worker_;
};

}  // namespace nettag::serve
