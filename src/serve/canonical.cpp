#include "serve/canonical.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

namespace nettag::serve {

namespace {

/// splitmix64 finalizer: cheap, well-distributed 64-bit mixing.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t combine(std::uint64_t h, std::uint64_t v) {
  return mix64(h ^ mix64(v));
}

/// Final WL labels after `rounds` of refinement (declaration-indexed).
std::vector<std::uint64_t> wl_labels(const Netlist& nl, int rounds) {
  const std::size_t n = nl.size();
  std::vector<std::uint64_t> label(n), next(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Gate& g = nl.gates()[i];
    label[i] = mix64((static_cast<std::uint64_t>(g.type) << 1) |
                     (g.is_primary_output ? 1u : 0u));
  }
  for (int r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      const Gate& g = nl.gates()[i];
      std::uint64_t h = combine(0x5e17ae5e + static_cast<std::uint64_t>(r),
                                label[i]);
      for (GateId f : g.fanins) {
        // Pin order matters (MUX2 select vs data, AOI/OAI groups); an
        // unconnected register D pin hashes as a distinct sentinel.
        h = combine(h, f == kNoGate ? 0xdeadull
                                    : label[static_cast<std::size_t>(f)]);
      }
      next[i] = h;
    }
    label.swap(next);
  }
  return label;
}

}  // namespace

std::uint64_t structural_hash(const Netlist& nl, int rounds,
                              bool order_sensitive) {
  std::vector<std::uint64_t> label = wl_labels(nl, rounds);
  // Fold the labels with multiplicities and count chained in. Sorting makes
  // the fold declaration-order-independent; per-node ops skip the sort so a
  // reordered netlist (whose per-gate result rows would be misassigned on a
  // replay) addresses a different entry.
  if (!order_sensitive) std::sort(label.begin(), label.end());
  std::uint64_t h = mix64(0x4e545447ull /* "NTTG" */ + nl.size());
  for (std::uint64_t l : label) h = combine(h, l);
  return h;
}

std::string canonical_fingerprint(const Netlist& nl, bool order_sensitive,
                                  int rounds) {
  const std::size_t n = nl.size();
  // `order[r]` is the declaration index of the gate emitted at rank r;
  // `rank[i]` inverts it so fanin references can be rewritten. In
  // declaration-order mode both are the identity.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  if (!order_sensitive) {
    const std::vector<std::uint64_t> label = wl_labels(nl, rounds);
    std::stable_sort(order.begin(), order.end(),
                     [&label](std::size_t a, std::size_t b) {
                       return label[a] < label[b];
                     });
  }
  std::vector<std::size_t> rank(n);
  for (std::size_t r = 0; r < n; ++r) rank[order[r]] = r;

  std::string fp;
  fp.reserve(16 + n * 12);
  fp += std::to_string(n);
  for (std::size_t r = 0; r < n; ++r) {
    const Gate& g = nl.gates()[order[r]];
    fp += ';';
    fp += std::to_string(static_cast<int>(g.type));
    if (g.is_primary_output) fp += '!';
    for (GateId f : g.fanins) {
      fp += ',';
      fp += f == kNoGate ? "x"
                         : std::to_string(rank[static_cast<std::size_t>(f)]);
    }
  }
  return fp;
}

CacheKey cache_key(const Netlist& nl, const char* op, int k_hop,
                   std::size_t max_cone_gates, const std::string& task,
                   bool per_node_output) {
  CacheKey out;
  out.key = std::to_string(structural_hash(nl, 3, per_node_output));
  out.key += '|';
  out.key += op;
  out.key += '|';
  out.key += std::to_string(k_hop);
  out.key += '|';
  out.key += std::to_string(max_cone_gates);
  if (!task.empty()) {
    out.key += '|';
    out.key += task;
  }
  out.fingerprint = canonical_fingerprint(nl, per_node_output);
  return out;
}

}  // namespace nettag::serve
