#include "serve/canonical.hpp"

#include <algorithm>
#include <vector>

namespace nettag::serve {

namespace {

/// splitmix64 finalizer: cheap, well-distributed 64-bit mixing.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t combine(std::uint64_t h, std::uint64_t v) {
  return mix64(h ^ mix64(v));
}

}  // namespace

std::uint64_t structural_hash(const Netlist& nl, int rounds) {
  const std::size_t n = nl.size();
  std::vector<std::uint64_t> label(n), next(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Gate& g = nl.gates()[i];
    label[i] = mix64((static_cast<std::uint64_t>(g.type) << 1) |
                     (g.is_primary_output ? 1u : 0u));
  }
  for (int r = 0; r < rounds; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      const Gate& g = nl.gates()[i];
      std::uint64_t h = combine(0x5e17ae5e + static_cast<std::uint64_t>(r),
                                label[i]);
      for (GateId f : g.fanins) {
        // Pin order matters (MUX2 select vs data, AOI/OAI groups); an
        // unconnected register D pin hashes as a distinct sentinel.
        h = combine(h, f == kNoGate ? 0xdeadull
                                    : label[static_cast<std::size_t>(f)]);
      }
      next[i] = h;
    }
    label.swap(next);
  }
  // Fold the label multiset order-independently: sort, then chain-mix so the
  // hash also depends on multiplicities and count.
  std::sort(label.begin(), label.end());
  std::uint64_t h = mix64(0x4e545447ull /* "NTTG" */ + n);
  for (std::uint64_t l : label) h = combine(h, l);
  return h;
}

std::string cache_key(const Netlist& nl, const char* op, int k_hop,
                      std::size_t max_cone_gates, const std::string& task) {
  std::string key = std::to_string(structural_hash(nl));
  key += '|';
  key += op;
  key += '|';
  key += std::to_string(k_hop);
  key += '|';
  key += std::to_string(max_cone_gates);
  if (!task.empty()) {
    key += '|';
    key += task;
  }
  return key;
}

}  // namespace nettag::serve
