#include "serve/batcher.hpp"

#include <algorithm>
#include <vector>

#include "util/parallel.hpp"

namespace nettag::serve {

Batcher::Batcher(Handler handler, std::size_t max_batch, BatchObserver observer)
    : handler_(std::move(handler)),
      observer_(std::move(observer)),
      max_batch_(max_batch ? max_batch : 1),
      worker_([this] { worker_loop(); }) {}

Batcher::~Batcher() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
    paused_ = false;
  }
  cv_.notify_all();
  worker_.join();
}

std::future<Response> Batcher::submit(Request request) {
  Pending pending;
  pending.request = std::move(request);
  std::future<Response> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(pending));
  }
  cv_.notify_all();
  return future;
}

void Batcher::pause() {
  std::lock_guard<std::mutex> lk(mu_);
  paused_ = true;
}

void Batcher::resume() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void Batcher::worker_loop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || (!queue_.empty() && !paused_); });
      if (queue_.empty() && stop_) return;
      const std::size_t take = std::min(queue_.size(), max_batch_);
      batch.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    if (observer_) observer_(batch.size());
    // One parallel region per batch. Exceptions are absorbed per request so
    // one poisoned input cannot abort its batchmates (or the daemon).
    ThreadPool::instance().run_indexed(batch.size(), [&](std::size_t i) {
      Response response;
      try {
        response = handler_(batch[i].request);
      } catch (const std::exception& e) {
        response.id = batch[i].request.id;
        response.op = batch[i].request.op;
        response.error = ErrorCode::kInternal;
        response.error_message = e.what();
      } catch (...) {
        response.id = batch[i].request.id;
        response.op = batch[i].request.op;
        response.error = ErrorCode::kInternal;
        response.error_message = "unknown exception";
      }
      batch[i].promise.set_value(std::move(response));
    });
  }
}

}  // namespace nettag::serve
