#include "serve/admission.hpp"

#include <string>

#include "analysis/diagnostic.hpp"
#include "netlist/io.hpp"
#include "util/timer.hpp"

namespace nettag::serve {

const Netlist* Admission::admit(const Request& request, Netlist* local,
                                Response* response) const {
  // Stage 1: parse the structural netlist text — unless the daemon's router
  // already did (it parses once to compute the shard route hash and passes
  // the structure along; the router records the parse stage time itself).
  Timer t;
  const Netlist* nl = request.pre_parsed.get();
  if (nl == nullptr) {
    try {
      *local = netlist_from_string(request.netlist_text);
    } catch (const std::exception& e) {
      metrics_->record_stage(Stage::kParse, t.seconds());
      response->error = ErrorCode::kParseError;
      response->error_message = e.what();
      return nullptr;
    }
    metrics_->record_stage(Stage::kParse, t.seconds());
    nl = local;
  }

  // Stage 2: admission gate — size bound, then src/analysis lint.
  if (nl->size() > config_.max_gates) {
    response->error = ErrorCode::kTooLarge;
    response->error_message =
        "netlist has " + std::to_string(nl->size()) + " gates, limit is " +
        std::to_string(config_.max_gates);
    return nullptr;
  }
  t.reset();
  const LintReport lint = lint_netlist(*nl, config_.lint);
  metrics_->record_stage(Stage::kLint, t.seconds());
  const bool rejected =
      lint.has_errors() ||
      (config_.reject_warnings && lint.count(Severity::kWarning) > 0);
  if (rejected) {
    response->error = ErrorCode::kLintRejected;
    response->error_message =
        "admission lint found " + std::to_string(lint.count(Severity::kError)) +
        " error(s), " + std::to_string(lint.count(Severity::kWarning)) +
        " warning(s)" + (config_.reject_warnings ? " (strict mode)" : "");
    for (const Diagnostic& d : lint.diagnostics()) {
      if (response->detail.size() >= 8) {
        response->detail.push_back(
            "... (" + std::to_string(lint.size() - 8) + " more)");
        break;
      }
      response->detail.push_back(std::string(severity_name(d.severity)) +
                                 " [" + d.rule + "] " + d.object + ": " +
                                 d.message);
    }
    return nullptr;
  }
  return nl;
}

}  // namespace nettag::serve
