#include "serve/server.hpp"

#include <chrono>
#include <utility>

#include "analysis/diagnostic.hpp"
#include "netlist/io.hpp"
#include "nn/gemm.hpp"
#include "nn/packed.hpp"
#include "nn/tape.hpp"
#include "serve/canonical.hpp"
#include "util/checksum.hpp"
#include "util/timer.hpp"

namespace nettag::serve {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

Json cache_stats_json(const ResultCache::Stats& s) {
  Json j = Json::object();
  j.set("entries", static_cast<double>(s.entries));
  j.set("capacity", static_cast<double>(s.capacity));
  j.set("hits", static_cast<double>(s.hits));
  j.set("misses", static_cast<double>(s.misses));
  j.set("evictions", static_cast<double>(s.evictions));
  j.set("collisions", static_cast<double>(s.collisions));
  j.set("hit_rate", s.hit_rate());
  return j;
}

}  // namespace

Server::Server(ServerConfig config, std::unique_ptr<NetTag> model)
    : config_(config), cache_(config.cache_entries) {
  gen_.model = std::move(model);
  gen_.params_crc = params_fingerprint(*gen_.model);
  // Packing happens after the fingerprint (it hashes fp32 values only, but
  // the ordering makes the independence obvious).
  if (config_.quantize) pack_model_weights(*gen_.model);
  batcher_ = std::make_unique<Batcher>(
      [this](const Request& request) { return process(request); },
      config_.max_batch,
      [this](std::size_t size) { metrics_.record_batch(size); });
}

Server::~Server() = default;

Server::ModelGen Server::snapshot() const {
  std::lock_guard<std::mutex> lk(model_mu_);
  return gen_;
}

const NetTag& Server::model() const { return *snapshot().model; }

void Server::register_task(const std::string& name, TaskFn fn) {
  std::lock_guard<std::mutex> lk(tasks_mu_);
  tasks_[name] = std::move(fn);
}

std::future<Response> Server::submit_async(Request request) {
  if (request.t_start == std::chrono::steady_clock::time_point{}) {
    request.t_start = std::chrono::steady_clock::now();
  }
  return batcher_->submit(std::move(request));
}

std::future<Response> Server::submit_line_async(const std::string& line) {
  Request request = parse_request(line);
  request.t_start = std::chrono::steady_clock::now();
  return submit_async(std::move(request));
}

std::string Server::handle_line(const std::string& line) {
  return render_response(submit_line_async(line).get());
}

bool Server::shutdown_requested() const {
  return shutdown_.load(std::memory_order_relaxed);
}

void Server::set_stats_extension(StatsExtension fn) {
  std::lock_guard<std::mutex> lk(stats_ext_mu_);
  stats_ext_ = std::move(fn);
}

std::string Server::stats_json() const {
  const ModelGen gen = snapshot();
  Json j = snapshot_to_json(metrics_.snapshot());
  j.set("result_cache", cache_stats_json(cache_.stats()));
  j.set("reloads", static_cast<double>(reloads_.load(std::memory_order_relaxed)));
  j.set("weights_crc32", crc32_hex(gen.params_crc));
  j.set("backend", config_.quantize ? "int8" : "fp32");
  j.set("simd", simd_backend_name());
  const TextEmbeddingCache& tc = gen.model->text_cache();
  Json text = Json::object();
  text.set("entries", static_cast<double>(tc.size()));
  text.set("capacity", static_cast<double>(tc.capacity()));
  text.set("hits", static_cast<double>(tc.hits()));
  text.set("misses", static_cast<double>(tc.misses()));
  text.set("evictions", static_cast<double>(tc.evictions()));
  const double total = static_cast<double>(tc.hits() + tc.misses());
  text.set("hit_rate", total > 0 ? static_cast<double>(tc.hits()) / total : 0.0);
  j.set("text_cache", std::move(text));
  const plan::Stats ps = plan::stats_snapshot();
  Json mp = Json::object();
  mp.set("enabled", ps.enabled);
  mp.set("tapes_recorded", static_cast<double>(ps.tapes_recorded));
  mp.set("plans_installed", static_cast<double>(ps.plans_installed));
  mp.set("verifier_rejects", static_cast<double>(ps.verifier_rejects));
  mp.set("replays", static_cast<double>(ps.replays));
  mp.set("divergences", static_cast<double>(ps.divergences));
  mp.set("buffers_planned", static_cast<double>(ps.buffers_planned));
  mp.set("buffers_coalesced", static_cast<double>(ps.buffers_coalesced));
  mp.set("mallocs_avoided", static_cast<double>(ps.mallocs_avoided));
  mp.set("heap_mat_allocs", static_cast<double>(ps.heap_mat_allocs));
  mp.set("slab_bytes", static_cast<double>(ps.slab_bytes));
  j.set("memory_plan", std::move(mp));
  {
    std::lock_guard<std::mutex> lk(stats_ext_mu_);
    if (stats_ext_) stats_ext_(&j);
  }
  return j.dump();
}

Response Server::process(const Request& request) {
  return process_on(request, &cache_);
}

Response Server::process_on(const Request& request, ResultCache* cache) {
  Response response;
  response.id = request.id;
  response.op = request.op;
  // A request-level parse/validation error short-circuits everything, even
  // when the op itself was recognized (e.g. a mistyped or out-of-range
  // field on an embed request must never reach the cache or the model).
  if (request.parse_error != ErrorCode::kNone) {
    response.error = request.parse_error;
    response.error_message = request.parse_message;
    metrics_.record_request(false, seconds_since(request.t_start));
    return response;
  }
  switch (request.op) {
    case Op::kInvalid:
      response.error = ErrorCode::kBadRequest;
      response.error_message = request.parse_message;
      break;
    case Op::kPing:
      response.result_json = "{\"pong\":true}";
      break;
    case Op::kStats:
      response.result_json = stats_json();
      break;
    case Op::kShutdown:
      shutdown_.store(true, std::memory_order_relaxed);
      response.result_json = "{\"shutting_down\":true}";
      break;
    case Op::kReload:
      response = process_reload(request);
      break;
    default:
      response = process_netlist_op(request, cache ? cache : &cache_);
      break;
  }
  metrics_.record_request(response.ok(), seconds_since(request.t_start));
  return response;
}

Response Server::process_reload(const Request& request) {
  Response response;
  response.id = request.id;
  response.op = request.op;
  const std::string prefix =
      request.model_prefix.empty() ? config_.model_prefix : request.model_prefix;
  if (prefix.empty()) {
    response.error = ErrorCode::kBadRequest;
    response.error_message =
        "reload needs 'model_prefix' (server has no configured default)";
    return response;
  }
  // One reload at a time; the (slow) checkpoint load happens outside
  // model_mu_, so concurrent requests keep serving the old generation and
  // only the pointer swap itself synchronizes with them.
  std::lock_guard<std::mutex> reload_lk(reload_mu_);
  try {
    std::shared_ptr<NetTag> fresh = load_checkpoint(prefix);
    {
      // Text-cache capacity and stripe count are serving configuration
      // (--text-cache-entries, daemon shard count), not checkpoint state —
      // carry them onto the fresh model so a hot reload keeps the tuned
      // layout instead of silently reverting to defaults.
      std::lock_guard<std::mutex> lk(model_mu_);
      fresh->text_cache().set_capacity(gen_.model->text_cache().capacity());
      fresh->text_cache().set_partitions(
          gen_.model->text_cache().partitions());
    }
    const std::uint32_t crc = params_fingerprint(*fresh);
    if (config_.quantize) pack_model_weights(*fresh);
    bool changed;
    {
      std::lock_guard<std::mutex> lk(model_mu_);
      changed = crc != gen_.params_crc;
      prev_model_ = std::move(gen_.model);
      gen_.model = std::move(fresh);
      gen_.params_crc = crc;
    }
    reloads_.fetch_add(1, std::memory_order_relaxed);
    response.result_json = "{\"reloaded\":true,\"prefix\":\"" +
                           json_escape(prefix) +
                           "\",\"params_changed\":" + (changed ? "true" : "false") +
                           ",\"weights_crc32\":\"" + crc32_hex(crc) + "\"}";
  } catch (const std::exception& e) {
    response.error = ErrorCode::kReloadFailed;
    response.error_message = e.what();
  }
  return response;
}

Response Server::process_netlist_op(const Request& request,
                                    ResultCache* cache) {
  Response response;
  response.id = request.id;
  response.op = request.op;
  // Pin this request to one model generation: a concurrent reload swaps the
  // server's generation but never the one in-flight work computes with.
  const ModelGen gen = snapshot();
  const NetTag& model = *gen.model;

  // Stage 1: parse the structural netlist text — unless the daemon's router
  // already did (it parses once to compute the shard route hash and passes
  // the structure along; the router records the parse stage time itself).
  Timer t;
  Netlist local_nl;
  const Netlist* nl_ptr = request.pre_parsed.get();
  if (nl_ptr == nullptr) {
    try {
      local_nl = netlist_from_string(request.netlist_text);
    } catch (const std::exception& e) {
      metrics_.record_stage(Stage::kParse, t.seconds());
      response.error = ErrorCode::kParseError;
      response.error_message = e.what();
      return response;
    }
    metrics_.record_stage(Stage::kParse, t.seconds());
    nl_ptr = &local_nl;
  }
  const Netlist& nl = *nl_ptr;

  // Stage 2: admission gate — size bound, then src/analysis lint.
  if (nl.size() > config_.max_gates) {
    response.error = ErrorCode::kTooLarge;
    response.error_message =
        "netlist has " + std::to_string(nl.size()) + " gates, limit is " +
        std::to_string(config_.max_gates);
    return response;
  }
  t.reset();
  const LintReport lint = lint_netlist(nl, config_.lint);
  metrics_.record_stage(Stage::kLint, t.seconds());
  const bool rejected =
      lint.has_errors() ||
      (config_.reject_warnings && lint.count(Severity::kWarning) > 0);
  if (rejected) {
    response.error = ErrorCode::kLintRejected;
    response.error_message =
        "admission lint found " + std::to_string(lint.count(Severity::kError)) +
        " error(s), " + std::to_string(lint.count(Severity::kWarning)) +
        " warning(s)" + (config_.reject_warnings ? " (strict mode)" : "");
    for (const Diagnostic& d : lint.diagnostics()) {
      if (response.detail.size() >= 8) {
        response.detail.push_back("... (" +
                                  std::to_string(lint.size() - 8) + " more)");
        break;
      }
      response.detail.push_back(std::string(severity_name(d.severity)) + " [" +
                                d.rule + "] " + d.object + ": " + d.message);
    }
    return response;
  }

  // Predict needs a registered head; resolve before touching the cache so an
  // unknown task never occupies an entry.
  TaskFn task_fn;
  if (request.op == Op::kPredict) {
    std::lock_guard<std::mutex> lk(tasks_mu_);
    auto it = tasks_.find(request.task);
    if (it == tasks_.end()) {
      response.error = ErrorCode::kUnknownTask;
      response.error_message = "no task head registered under '" +
                               request.task + "'";
      return response;
    }
    task_fn = it->second;
  }

  // Stage 3: content-addressed cache. embed_gates returns one row per gate
  // in declaration order, so its key and fingerprint are declaration-order
  // sensitive — a reordered isomorphic netlist recomputes instead of
  // receiving rows assigned to the wrong gates. The weights CRC of the
  // pinned model generation is part of the key: a hot reload with new
  // weights strands the old entries instead of replaying them, while a
  // reload of identical weights keeps every entry live.
  CacheKey key =
      cache_key(nl, op_name(request.op), request.k_hop,
                request.max_cone_gates, request.task,
                /*per_node_output=*/request.op == Op::kEmbedGates);
  key.key += "|w";
  key.key += crc32_hex(gen.params_crc);
  // Numeric backend joins the key too: int8 and fp32 results differ, so a
  // cache filled by one backend must never answer for the other.
  key.key += config_.quantize ? "|int8" : "|fp32";
  std::string payload;
  if (cache->lookup(key.key, key.fingerprint, &payload)) {
    response.result_json = std::move(payload);
    response.cached = true;
    return response;
  }

  // Stage 4: model work, with per-stage timing fed back into metrics.
  EmbedTiming timing;
  switch (request.op) {
    case Op::kEmbedGates: {
      const NetTag::ConeEmbedding emb = model.embed(nl, request.k_hop, &timing);
      payload = "{\"dim\":" + std::to_string(model.embedding_dim()) +
                ",\"nodes\":" + mat_to_json(emb.nodes) +
                ",\"cls\":" + mat_to_json(emb.cls) + "}";
      break;
    }
    case Op::kEmbedCone: {
      const NetTag::ConeEmbedding emb = model.embed(nl, request.k_hop, &timing);
      payload = "{\"dim\":" + std::to_string(model.embedding_dim()) +
                ",\"cls\":" + mat_to_json(emb.cls) + "}";
      break;
    }
    case Op::kEmbedCircuit: {
      const Mat circuit =
          model.embed_circuit(nl, request.max_cone_gates, &timing);
      payload = "{\"dim\":" + std::to_string(model.embedding_dim()) +
                ",\"registers\":" + std::to_string(nl.registers().size()) +
                ",\"circuit\":" + mat_to_json(circuit) + "}";
      break;
    }
    case Op::kPredict: {
      Timer task_timer;
      const std::vector<double> scores = task_fn(model, nl);
      // Head time is dominated by the embed inside task_fn; attribute it to
      // the TAGFormer stage (the head itself is a few matmuls).
      atomic_add_seconds(timing.tagformer, task_timer.seconds());
      payload = "{\"task\":\"" + json_escape(request.task) + "\",\"scores\":[";
      for (std::size_t i = 0; i < scores.size(); ++i) {
        if (i) payload += ',';
        payload += json_number(scores[i]);
      }
      payload += "]}";
      break;
    }
    default:
      response.error = ErrorCode::kInternal;
      response.error_message = "unhandled op in process_netlist_op";
      return response;
  }
  metrics_.record_stage(Stage::kTagBuild,
                        timing.tag_build.load(std::memory_order_relaxed));
  metrics_.record_stage(Stage::kTextEncode,
                        timing.text_encode.load(std::memory_order_relaxed));
  metrics_.record_stage(Stage::kTagFormer,
                        timing.tagformer.load(std::memory_order_relaxed));

  cache->insert(key.key, key.fingerprint, payload);
  response.result_json = std::move(payload);
  response.cached = false;
  return response;
}

}  // namespace nettag::serve
