#include "serve/server.hpp"

#include <chrono>
#include <utility>

#include "analysis/diagnostic.hpp"
#include "nn/gemm.hpp"
#include "nn/tape.hpp"
#include "serve/canonical.hpp"
#include "util/checksum.hpp"
#include "util/timer.hpp"

namespace nettag::serve {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

Json cache_stats_json(const ResultCache::Stats& s) {
  Json j = Json::object();
  j.set("entries", static_cast<double>(s.entries));
  j.set("capacity", static_cast<double>(s.capacity));
  j.set("hits", static_cast<double>(s.hits));
  j.set("misses", static_cast<double>(s.misses));
  j.set("evictions", static_cast<double>(s.evictions));
  j.set("collisions", static_cast<double>(s.collisions));
  j.set("hit_rate", s.hit_rate());
  return j;
}

const char* backend_name(bool quantize) { return quantize ? "int8" : "fp32"; }

Json replica_info_json(const ReplicaInfo& info) {
  Json j = Json::object();
  j.set("name", info.name);
  j.set("prefix", info.prefix);
  j.set("weights_crc32", crc32_hex(info.params_crc));
  j.set("backend", backend_name(info.quantize));
  j.set("reloads", static_cast<double>(info.reloads));
  j.set("requests", static_cast<double>(info.requests));
  j.set("cache_hits", static_cast<double>(info.cache_hits));
  j.set("cache_misses", static_cast<double>(info.cache_misses));
  return j;
}

/// The replica a request targets: absent "model" = the v1 default.
const std::string& replica_name(const Request& request) {
  static const std::string kDefault = kDefaultModelName;
  return request.model.empty() ? kDefault : request.model;
}

Response unknown_model_response(const Request& request) {
  Response response;
  response.id = request.id;
  response.op = request.op;
  response.error = ErrorCode::kUnknownModel;
  response.error_message =
      "no model loaded under '" + replica_name(request) + "'";
  return response;
}

}  // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      admission_(AdmissionConfig{config_.max_gates, config_.reject_warnings,
                                 config_.lint},
                 &metrics_),
      cache_(config_.cache_entries) {
  registry_.set_cache_layout(config_.text_cache_entries,
                             config_.text_cache_partitions);
  batcher_ = std::make_unique<Batcher>(
      [this](const Request& request) { return process(request); },
      config_.max_batch,
      [this](std::size_t size) { metrics_.record_batch(size); });
}

Server::Server(ServerConfig config, std::unique_ptr<NetTag> model)
    : Server(std::move(config)) {
  registry_.add(kDefaultModelName, std::move(model), config_.model_prefix,
                config_.quantize);
}

Server::~Server() = default;

std::shared_ptr<const NetTag> Server::model_snapshot(
    const std::string& name) const {
  ReplicaSnapshot snap;
  if (!registry_.snapshot(name, &snap)) return nullptr;
  return snap.model;
}

bool Server::load_model(const std::string& name, const std::string& prefix,
                        int quantize, std::string* error) {
  const bool q = quantize < 0 ? config_.quantize : quantize != 0;
  return registry_.load(name, prefix, q, error);
}

bool Server::unload_model(const std::string& name) {
  return registry_.unload(name);
}

void Server::register_task(const std::string& name, TaskFn fn) {
  std::lock_guard<std::mutex> lk(tasks_mu_);
  tasks_[name] = std::move(fn);
}

std::future<Response> Server::submit_async(Request request) {
  if (request.t_start == std::chrono::steady_clock::time_point{}) {
    request.t_start = std::chrono::steady_clock::now();
  }
  return batcher_->submit(std::move(request));
}

std::future<Response> Server::submit_line_async(const std::string& line) {
  Request request = parse_request(line);
  request.t_start = std::chrono::steady_clock::now();
  return submit_async(std::move(request));
}

std::string Server::handle_line(const std::string& line) {
  return render_response(submit_line_async(line).get());
}

bool Server::shutdown_requested() const {
  return shutdown_.load(std::memory_order_relaxed);
}

void Server::set_stats_extension(StatsExtension fn) {
  std::lock_guard<std::mutex> lk(stats_ext_mu_);
  stats_ext_ = std::move(fn);
}

std::string Server::stats_json() const {
  Json j = snapshot_to_json(metrics_.snapshot());
  j.set("result_cache", cache_stats_json(cache_.stats()));
  j.set("reloads", static_cast<double>(registry_.total_reloads()));
  // The v1 top-level fields reflect the "default" replica (byte-compatible
  // with the single-model server); the "models" array covers every replica.
  ReplicaSnapshot def;
  if (registry_.snapshot(kDefaultModelName, &def)) {
    j.set("weights_crc32", crc32_hex(def.params_crc));
    j.set("backend", backend_name(def.quantize));
  }
  j.set("simd", simd_backend_name());
  const std::shared_ptr<TextEmbeddingCache> tc_ptr = registry_.text_cache();
  if (tc_ptr) {
    const TextEmbeddingCache& tc = *tc_ptr;
    Json text = Json::object();
    text.set("entries", static_cast<double>(tc.size()));
    text.set("capacity", static_cast<double>(tc.capacity()));
    text.set("hits", static_cast<double>(tc.hits()));
    text.set("misses", static_cast<double>(tc.misses()));
    text.set("evictions", static_cast<double>(tc.evictions()));
    const double total = static_cast<double>(tc.hits() + tc.misses());
    text.set("hit_rate",
             total > 0 ? static_cast<double>(tc.hits()) / total : 0.0);
    j.set("text_cache", std::move(text));
  }
  const plan::Stats ps = plan::stats_snapshot();
  Json mp = Json::object();
  mp.set("enabled", ps.enabled);
  mp.set("tapes_recorded", static_cast<double>(ps.tapes_recorded));
  mp.set("plans_installed", static_cast<double>(ps.plans_installed));
  mp.set("verifier_rejects", static_cast<double>(ps.verifier_rejects));
  mp.set("replays", static_cast<double>(ps.replays));
  mp.set("divergences", static_cast<double>(ps.divergences));
  mp.set("buffers_planned", static_cast<double>(ps.buffers_planned));
  mp.set("buffers_coalesced", static_cast<double>(ps.buffers_coalesced));
  mp.set("mallocs_avoided", static_cast<double>(ps.mallocs_avoided));
  mp.set("heap_mat_allocs", static_cast<double>(ps.heap_mat_allocs));
  mp.set("slab_bytes", static_cast<double>(ps.slab_bytes));
  j.set("memory_plan", std::move(mp));
  Json models = Json::array();
  for (const ReplicaInfo& info : registry_.list()) {
    models.push_back(replica_info_json(info));
  }
  j.set("models", std::move(models));
  // Effective request defaults, so clients can see what an absent field
  // resolves to without reading the server's flags.
  Json defaults = Json::object();
  defaults.set("max_gates", static_cast<double>(config_.max_gates));
  defaults.set("max_cone_gates", static_cast<double>(config_.max_cone_gates));
  defaults.set("max_batch", static_cast<double>(config_.max_batch));
  defaults.set("reject_warnings", config_.reject_warnings);
  defaults.set("quantize", config_.quantize);
  j.set("defaults", std::move(defaults));
  {
    std::lock_guard<std::mutex> lk(stats_ext_mu_);
    if (stats_ext_) stats_ext_(&j);
  }
  return j.dump();
}

Response Server::process(const Request& request) {
  return process_on(request, &cache_);
}

Response Server::process_on(const Request& request, ResultCache* cache) {
  Response response;
  response.id = request.id;
  response.op = request.op;
  // A request-level parse/validation error short-circuits everything, even
  // when the op itself was recognized (e.g. a mistyped or out-of-range
  // field on an embed request must never reach the cache or the model).
  if (request.parse_error != ErrorCode::kNone) {
    response.error = request.parse_error;
    response.error_message = request.parse_message;
    metrics_.record_request(false, seconds_since(request.t_start));
    return response;
  }
  switch (request.op) {
    case Op::kInvalid:
      response.error = ErrorCode::kBadRequest;
      response.error_message = request.parse_message;
      break;
    case Op::kPing:
      response.result_json = "{\"pong\":true}";
      break;
    case Op::kStats:
      response.result_json = stats_json();
      break;
    case Op::kShutdown:
      shutdown_.store(true, std::memory_order_relaxed);
      response.result_json = "{\"shutting_down\":true}";
      break;
    case Op::kReload:
      response = process_reload(request);
      break;
    case Op::kModelLoad:
    case Op::kModelUnload:
    case Op::kModelList:
      response = process_model_admin(request);
      break;
    default: {
      // Pin this request to one replica generation: a concurrent reload or
      // unload swaps the registry's state but never the model in-flight
      // work computes with. Resolution happens here — at processing time —
      // so a model_unload ahead of queued requests drains them with
      // unknown_model instead of crashing into a dangling replica.
      ReplicaSnapshot replica;
      if (!registry_.snapshot(replica_name(request), &replica)) {
        response = unknown_model_response(request);
        break;
      }
      response = process_netlist_op(request, replica, cache ? cache : &cache_);
      break;
    }
  }
  metrics_.record_request(response.ok(), seconds_since(request.t_start));
  return response;
}

Response Server::process_reload(const Request& request) {
  Response response;
  response.id = request.id;
  response.op = request.op;
  const ReloadOutcome outcome =
      registry_.reload(replica_name(request), request.model_prefix);
  if (!outcome.ok) {
    response.error = outcome.error;
    response.error_message = outcome.message;
    return response;
  }
  response.result_json =
      "{\"reloaded\":true,\"prefix\":\"" + json_escape(outcome.prefix) +
      "\",\"params_changed\":" + (outcome.params_changed ? "true" : "false") +
      ",\"weights_crc32\":\"" + crc32_hex(outcome.params_crc) + "\"}";
  return response;
}

Response Server::process_model_admin(const Request& request) {
  Response response;
  response.id = request.id;
  response.op = request.op;
  switch (request.op) {
    case Op::kModelLoad: {
      const bool replaced = registry_.has(request.model);
      std::string error;
      if (!load_model(request.model, request.model_prefix, request.quantize,
                      &error)) {
        response.error = ErrorCode::kReloadFailed;
        response.error_message = error;
        return response;
      }
      ReplicaSnapshot snap;
      registry_.snapshot(request.model, &snap);
      response.result_json =
          "{\"loaded\":true,\"model\":\"" + json_escape(request.model) +
          "\",\"prefix\":\"" + json_escape(request.model_prefix) +
          "\",\"weights_crc32\":\"" + crc32_hex(snap.params_crc) +
          "\",\"backend\":\"" + backend_name(snap.quantize) +
          "\",\"replaced\":" + (replaced ? "true" : "false") + "}";
      return response;
    }
    case Op::kModelUnload: {
      if (!registry_.unload(request.model)) {
        return unknown_model_response(request);
      }
      response.result_json = "{\"unloaded\":true,\"model\":\"" +
                             json_escape(request.model) + "\"}";
      return response;
    }
    case Op::kModelList:
    default: {
      std::string out = "{\"models\":[";
      bool first = true;
      for (const ReplicaInfo& info : registry_.list()) {
        if (!first) out += ',';
        first = false;
        out += replica_info_json(info).dump();
      }
      out += "]}";
      response.result_json = std::move(out);
      return response;
    }
  }
}

Response Server::process_netlist_op(const Request& request,
                                    const ReplicaSnapshot& replica,
                                    ResultCache* cache) {
  Response response;
  response.id = request.id;
  response.op = request.op;
  const NetTag& model = *replica.model;
  replica.counters->requests.fetch_add(1, std::memory_order_relaxed);

  // Stages 1+2: parse, size bound, lint gate (serve/admission.hpp).
  Netlist local_nl;
  const Netlist* nl_ptr = admission_.admit(request, &local_nl, &response);
  if (nl_ptr == nullptr) return response;
  const Netlist& nl = *nl_ptr;

  // Predict needs a registered head; resolve before touching the cache so an
  // unknown task never occupies an entry.
  TaskFn task_fn;
  if (request.op == Op::kPredict) {
    std::lock_guard<std::mutex> lk(tasks_mu_);
    auto it = tasks_.find(request.task);
    if (it == tasks_.end()) {
      response.error = ErrorCode::kUnknownTask;
      response.error_message = "no task head registered under '" +
                               request.task + "'";
      return response;
    }
    task_fn = it->second;
  }

  // An absent max_cone_gates resolves to the server default here — before
  // the cache key and the model call — so explicit-120 and absent requests
  // share one entry under the default config.
  const std::size_t max_cone_gates = request.max_cone_gates != 0
                                         ? request.max_cone_gates
                                         : config_.max_cone_gates;

  // Stage 3: content-addressed cache. embed_gates returns one row per gate
  // in declaration order, so its key and fingerprint are declaration-order
  // sensitive — a reordered isomorphic netlist recomputes instead of
  // receiving rows assigned to the wrong gates. The pinned replica's name,
  // weights CRC, and numeric backend join the key (ReplicaSnapshot::
  // cache_tag): a hot reload with new weights strands the old entries
  // instead of replaying them, a reload of identical weights keeps every
  // entry live, and no replica can answer for another.
  CacheKey key =
      cache_key(nl, op_name(request.op), request.k_hop, max_cone_gates,
                request.task,
                /*per_node_output=*/request.op == Op::kEmbedGates);
  key.key += replica.cache_tag();
  std::string payload;
  if (cache->lookup(key.key, key.fingerprint, &payload)) {
    replica.counters->cache_hits.fetch_add(1, std::memory_order_relaxed);
    response.result_json = std::move(payload);
    response.cached = true;
    return response;
  }
  replica.counters->cache_misses.fetch_add(1, std::memory_order_relaxed);

  // Stage 4: model work, with per-stage timing fed back into metrics.
  EmbedTiming timing;
  switch (request.op) {
    case Op::kEmbedGates: {
      const NetTag::ConeEmbedding emb = model.embed(nl, request.k_hop, &timing);
      payload = "{\"dim\":" + std::to_string(model.embedding_dim()) +
                ",\"nodes\":" + mat_to_json(emb.nodes) +
                ",\"cls\":" + mat_to_json(emb.cls) + "}";
      break;
    }
    case Op::kEmbedCone: {
      const NetTag::ConeEmbedding emb = model.embed(nl, request.k_hop, &timing);
      payload = "{\"dim\":" + std::to_string(model.embedding_dim()) +
                ",\"cls\":" + mat_to_json(emb.cls) + "}";
      break;
    }
    case Op::kEmbedCircuit: {
      const Mat circuit = model.embed_circuit(nl, max_cone_gates, &timing);
      payload = "{\"dim\":" + std::to_string(model.embedding_dim()) +
                ",\"registers\":" + std::to_string(nl.registers().size()) +
                ",\"circuit\":" + mat_to_json(circuit) + "}";
      break;
    }
    case Op::kPredict: {
      Timer task_timer;
      const std::vector<double> scores = task_fn(model, nl);
      // Head time is dominated by the embed inside task_fn; attribute it to
      // the TAGFormer stage (the head itself is a few matmuls).
      atomic_add_seconds(timing.tagformer, task_timer.seconds());
      payload = "{\"task\":\"" + json_escape(request.task) + "\",\"scores\":[";
      for (std::size_t i = 0; i < scores.size(); ++i) {
        if (i) payload += ',';
        payload += json_number(scores[i]);
      }
      payload += "]}";
      break;
    }
    default:
      response.error = ErrorCode::kInternal;
      response.error_message = "unhandled op in process_netlist_op";
      return response;
  }
  metrics_.record_stage(Stage::kTagBuild,
                        timing.tag_build.load(std::memory_order_relaxed));
  metrics_.record_stage(Stage::kTextEncode,
                        timing.text_encode.load(std::memory_order_relaxed));
  metrics_.record_stage(Stage::kTagFormer,
                        timing.tagformer.load(std::memory_order_relaxed));

  cache->insert(key.key, key.fingerprint, payload);
  response.result_json = std::move(payload);
  response.cached = false;
  return response;
}

}  // namespace nettag::serve
