#include "serve/protocol.hpp"

#include <cstdio>

#include "analysis/diagnostic.hpp"  // json_escape

namespace nettag::serve {

const char* op_name(Op op) {
  switch (op) {
    case Op::kInvalid: return "invalid";
    case Op::kPing: return "ping";
    case Op::kStats: return "stats";
    case Op::kShutdown: return "shutdown";
    case Op::kEmbedGates: return "embed_gates";
    case Op::kEmbedCone: return "embed_cone";
    case Op::kEmbedCircuit: return "embed_circuit";
    case Op::kPredict: return "predict";
  }
  return "invalid";
}

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kBadJson: return "bad_json";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kTooLarge: return "too_large";
    case ErrorCode::kLintRejected: return "lint_rejected";
    case ErrorCode::kUnknownTask: return "unknown_task";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

namespace {

bool op_from_name(const std::string& name, Op* out) {
  for (Op op : {Op::kPing, Op::kStats, Op::kShutdown, Op::kEmbedGates,
                Op::kEmbedCone, Op::kEmbedCircuit, Op::kPredict}) {
    if (name == op_name(op)) {
      *out = op;
      return true;
    }
  }
  return false;
}

bool needs_netlist(Op op) {
  return op == Op::kEmbedGates || op == Op::kEmbedCone ||
         op == Op::kEmbedCircuit || op == Op::kPredict;
}

}  // namespace

Request parse_request(const std::string& line) {
  Request req;
  Json doc;
  std::string error;
  if (!Json::parse(line, &doc, &error)) {
    req.parse_error = ErrorCode::kBadJson;
    req.parse_message = "request line is not valid JSON: " + error;
    return req;
  }
  if (!doc.is_object()) {
    req.parse_error = ErrorCode::kBadJson;
    req.parse_message = "request must be a JSON object";
    return req;
  }
  if (const Json* id = doc.find("id")) {
    // Clients commonly send numeric ids; echo those back textually too.
    req.id = id->is_string() ? id->as_string() : id->dump();
  }
  const Json* op = doc.find("op");
  if (!op || !op->is_string()) {
    req.parse_error = ErrorCode::kBadRequest;
    req.parse_message = "missing string field 'op'";
    return req;
  }
  if (!op_from_name(op->as_string(), &req.op)) {
    req.op = Op::kInvalid;
    req.parse_error = ErrorCode::kBadRequest;
    req.parse_message = "unknown op '" + op->as_string() + "'";
    return req;
  }
  if (const Json* nl = doc.find("netlist")) req.netlist_text = nl->as_string();
  if (const Json* k = doc.find("k_hop")) {
    req.k_hop = static_cast<int>(k->as_int());
    if (req.k_hop < 0 || req.k_hop > 16) {
      req.parse_error = ErrorCode::kBadRequest;
      req.parse_message = "'k_hop' out of range [0,16]";
      return req;
    }
  }
  if (const Json* m = doc.find("max_cone_gates")) {
    const long long v = m->as_int();
    if (v < 1) {
      req.parse_error = ErrorCode::kBadRequest;
      req.parse_message = "'max_cone_gates' must be >= 1";
      return req;
    }
    req.max_cone_gates = static_cast<std::size_t>(v);
  }
  if (const Json* t = doc.find("task")) req.task = t->as_string();
  if (needs_netlist(req.op) && req.netlist_text.empty()) {
    req.parse_error = ErrorCode::kBadRequest;
    req.parse_message =
        std::string("op '") + op_name(req.op) + "' requires field 'netlist'";
    return req;
  }
  if (req.op == Op::kPredict && req.task.empty()) {
    req.parse_error = ErrorCode::kBadRequest;
    req.parse_message = "op 'predict' requires field 'task'";
    return req;
  }
  return req;
}

std::string render_response(const Response& response) {
  std::string out;
  out.reserve(64 + response.result_json.size());
  out += "{\"id\":\"";
  out += json_escape(response.id);
  out += "\",\"op\":\"";
  out += op_name(response.op);
  out += "\"";
  if (response.ok()) {
    out += ",\"status\":\"ok\",\"cached\":";
    out += response.cached ? "true" : "false";
    out += ",\"result\":";
    out += response.result_json.empty() ? "{}" : response.result_json;
  } else {
    out += ",\"status\":\"error\",\"error\":{\"code\":\"";
    out += error_code_name(response.error);
    out += "\",\"message\":\"";
    out += json_escape(response.error_message);
    out += "\"";
    if (!response.detail.empty()) {
      out += ",\"detail\":[";
      for (std::size_t i = 0; i < response.detail.size(); ++i) {
        if (i) out += ',';
        out += '"';
        out += json_escape(response.detail[i]);
        out += '"';
      }
      out += ']';
    }
    out += "}";
  }
  out += "}";
  return out;
}

std::string mat_to_json(const Mat& m) {
  std::string out;
  out.reserve(16 + m.v.size() * 12);
  out += "{\"rows\":";
  out += std::to_string(m.rows);
  out += ",\"cols\":";
  out += std::to_string(m.cols);
  out += ",\"data\":[";
  char buf[40];
  for (std::size_t i = 0; i < m.v.size(); ++i) {
    if (i) out += ',';
    std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(m.v[i]));
    out += buf;
  }
  out += "]}";
  return out;
}

bool mat_from_json(const Json& j, Mat* out) {
  const Json* rows = j.find("rows");
  const Json* cols = j.find("cols");
  const Json* data = j.find("data");
  if (!rows || !cols || !data || !data->is_array()) return false;
  const int r = static_cast<int>(rows->as_int());
  const int c = static_cast<int>(cols->as_int());
  if (r < 0 || c < 0 ||
      data->items().size() != static_cast<std::size_t>(r) * static_cast<std::size_t>(c)) {
    return false;
  }
  *out = Mat(r, c);
  for (std::size_t i = 0; i < data->items().size(); ++i) {
    if (!data->items()[i].is_number()) return false;
    out->v[i] = static_cast<float>(data->items()[i].as_number());
  }
  return true;
}

}  // namespace nettag::serve
