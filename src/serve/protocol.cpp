#include "serve/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "analysis/diagnostic.hpp"  // json_escape

namespace nettag::serve {

const char* op_name(Op op) {
  switch (op) {
    case Op::kInvalid: return "invalid";
    case Op::kPing: return "ping";
    case Op::kStats: return "stats";
    case Op::kShutdown: return "shutdown";
    case Op::kReload: return "reload";
    case Op::kEmbedGates: return "embed_gates";
    case Op::kEmbedCone: return "embed_cone";
    case Op::kEmbedCircuit: return "embed_circuit";
    case Op::kPredict: return "predict";
  }
  return "invalid";
}

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kBadJson: return "bad_json";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kTooLarge: return "too_large";
    case ErrorCode::kLintRejected: return "lint_rejected";
    case ErrorCode::kUnknownTask: return "unknown_task";
    case ErrorCode::kReloadFailed: return "reload_failed";
    case ErrorCode::kTooBusy: return "too_busy";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

namespace {

bool op_from_name(const std::string& name, Op* out) {
  for (Op op : {Op::kPing, Op::kStats, Op::kShutdown, Op::kReload,
                Op::kEmbedGates, Op::kEmbedCone, Op::kEmbedCircuit,
                Op::kPredict}) {
    if (name == op_name(op)) {
      *out = op;
      return true;
    }
  }
  return false;
}

bool needs_netlist(Op op) {
  return op == Op::kEmbedGates || op == Op::kEmbedCone ||
         op == Op::kEmbedCircuit || op == Op::kPredict;
}

}  // namespace

Request parse_request(const std::string& line) {
  Request req;
  Json doc;
  std::string error;
  if (!Json::parse(line, &doc, &error)) {
    req.parse_error = ErrorCode::kBadJson;
    req.parse_message = "request line is not valid JSON: " + error;
    return req;
  }
  if (!doc.is_object()) {
    req.parse_error = ErrorCode::kBadJson;
    req.parse_message = "request must be a JSON object";
    return req;
  }
  if (const Json* id = doc.find("id")) {
    // Clients commonly send numeric ids; echo those back textually too.
    req.id = id->is_string() ? id->as_string() : id->dump();
  }
  const Json* op = doc.find("op");
  if (!op || !op->is_string()) {
    req.parse_error = ErrorCode::kBadRequest;
    req.parse_message = "missing string field 'op'";
    return req;
  }
  if (!op_from_name(op->as_string(), &req.op)) {
    req.op = Op::kInvalid;
    req.parse_error = ErrorCode::kBadRequest;
    req.parse_message = "unknown op '" + op->as_string() + "'";
    return req;
  }
  // A present-but-mistyped field is a client error, never a silent default:
  // {"k_hop":"3"} must not run with k_hop=0 (and cache that result).
  if (const Json* nl = doc.find("netlist")) {
    if (!nl->is_string()) {
      req.parse_error = ErrorCode::kBadRequest;
      req.parse_message = "'netlist' must be a string";
      return req;
    }
    req.netlist_text = nl->as_string();
  }
  if (const Json* k = doc.find("k_hop")) {
    const double v = k->as_number(-1.0);
    if (!k->is_number() || v != std::floor(v) || v < 0 || v > 16) {
      req.parse_error = ErrorCode::kBadRequest;
      req.parse_message = "'k_hop' must be an integer in [0,16]";
      return req;
    }
    req.k_hop = static_cast<int>(v);
  }
  if (const Json* m = doc.find("max_cone_gates")) {
    const double v = m->as_number(0.0);
    if (!m->is_number() || v != std::floor(v) || v < 1) {
      req.parse_error = ErrorCode::kBadRequest;
      req.parse_message = "'max_cone_gates' must be an integer >= 1";
      return req;
    }
    req.max_cone_gates = static_cast<std::size_t>(m->as_int());
  }
  if (const Json* t = doc.find("task")) {
    if (!t->is_string()) {
      req.parse_error = ErrorCode::kBadRequest;
      req.parse_message = "'task' must be a string";
      return req;
    }
    req.task = t->as_string();
  }
  if (const Json* p = doc.find("model_prefix")) {
    if (!p->is_string() || p->as_string().empty()) {
      req.parse_error = ErrorCode::kBadRequest;
      req.parse_message = "'model_prefix' must be a non-empty string";
      return req;
    }
    req.model_prefix = p->as_string();
  }
  if (needs_netlist(req.op) && req.netlist_text.empty()) {
    req.parse_error = ErrorCode::kBadRequest;
    req.parse_message =
        std::string("op '") + op_name(req.op) + "' requires field 'netlist'";
    return req;
  }
  if (req.op == Op::kPredict && req.task.empty()) {
    req.parse_error = ErrorCode::kBadRequest;
    req.parse_message = "op 'predict' requires field 'task'";
    return req;
  }
  return req;
}

std::string render_response(const Response& response) {
  std::string out;
  out.reserve(64 + response.result_json.size());
  out += "{\"id\":\"";
  out += json_escape(response.id);
  out += "\",\"op\":\"";
  out += op_name(response.op);
  out += "\"";
  if (response.ok()) {
    out += ",\"status\":\"ok\",\"cached\":";
    out += response.cached ? "true" : "false";
    out += ",\"result\":";
    out += response.result_json.empty() ? "{}" : response.result_json;
  } else {
    out += ",\"status\":\"error\",\"error\":{\"code\":\"";
    out += error_code_name(response.error);
    out += "\",\"message\":\"";
    out += json_escape(response.error_message);
    out += "\"";
    if (!response.detail.empty()) {
      out += ",\"detail\":[";
      for (std::size_t i = 0; i < response.detail.size(); ++i) {
        if (i) out += ',';
        out += '"';
        out += json_escape(response.detail[i]);
        out += '"';
      }
      out += ']';
    }
    out += "}";
  }
  out += "}";
  return out;
}

std::string mat_to_json(const Mat& m) {
  std::string out;
  out.reserve(16 + m.v.size() * 12);
  out += "{\"rows\":";
  out += std::to_string(m.rows);
  out += ",\"cols\":";
  out += std::to_string(m.cols);
  out += ",\"data\":[";
  char buf[40];
  for (std::size_t i = 0; i < m.v.size(); ++i) {
    if (i) out += ',';
    std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(m.v[i]));
    out += buf;
  }
  out += "]}";
  return out;
}

bool mat_from_json(const Json& j, Mat* out) {
  const Json* rows = j.find("rows");
  const Json* cols = j.find("cols");
  const Json* data = j.find("data");
  if (!rows || !cols || !data || !rows->is_number() || !cols->is_number() ||
      !data->is_array()) {
    return false;
  }
  const long long rl = rows->as_int(-1);
  const long long cl = cols->as_int(-1);
  if (rl < 0 || cl < 0 || rl > std::numeric_limits<int>::max() ||
      cl > std::numeric_limits<int>::max()) {
    return false;
  }
  const int r = static_cast<int>(rl);
  const int c = static_cast<int>(cl);
  if (r < 0 || c < 0 ||
      data->items().size() != static_cast<std::size_t>(r) * static_cast<std::size_t>(c)) {
    return false;
  }
  *out = Mat(r, c);
  for (std::size_t i = 0; i < data->items().size(); ++i) {
    if (!data->items()[i].is_number()) return false;
    out->v[i] = static_cast<float>(data->items()[i].as_number());
  }
  return true;
}

}  // namespace nettag::serve
