#include "serve/protocol.hpp"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>

#include "analysis/diagnostic.hpp"  // json_escape

namespace nettag::serve {

const char* op_name(Op op) {
  switch (op) {
    case Op::kInvalid: return "invalid";
    case Op::kPing: return "ping";
    case Op::kStats: return "stats";
    case Op::kShutdown: return "shutdown";
    case Op::kReload: return "reload";
    case Op::kModelLoad: return "model_load";
    case Op::kModelUnload: return "model_unload";
    case Op::kModelList: return "model_list";
    case Op::kEmbedGates: return "embed_gates";
    case Op::kEmbedCone: return "embed_cone";
    case Op::kEmbedCircuit: return "embed_circuit";
    case Op::kPredict: return "predict";
  }
  return "invalid";
}

bool is_netlist_op(Op op) {
  switch (op) {
    case Op::kEmbedGates:
    case Op::kEmbedCone:
    case Op::kEmbedCircuit:
    case Op::kPredict:
      return true;
    default:
      return false;
  }
}

bool is_control_op(Op op) {
  return op != Op::kInvalid && !is_netlist_op(op);
}

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kBadJson: return "bad_json";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kTooLarge: return "too_large";
    case ErrorCode::kLintRejected: return "lint_rejected";
    case ErrorCode::kUnknownTask: return "unknown_task";
    case ErrorCode::kUnknownModel: return "unknown_model";
    case ErrorCode::kReloadFailed: return "reload_failed";
    case ErrorCode::kTooBusy: return "too_busy";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

namespace {

bool op_from_name(const std::string& name, Op* out) {
  for (Op op : {Op::kPing, Op::kStats, Op::kShutdown, Op::kReload,
                Op::kModelLoad, Op::kModelUnload, Op::kModelList,
                Op::kEmbedGates, Op::kEmbedCone, Op::kEmbedCircuit,
                Op::kPredict}) {
    if (name == op_name(op)) {
      *out = op;
      return true;
    }
  }
  return false;
}

constexpr std::uint32_t op_bit(Op op) {
  return 1u << static_cast<unsigned>(op);
}

constexpr std::uint32_t kNetlistOps = op_bit(Op::kEmbedGates) |
                                      op_bit(Op::kEmbedCone) |
                                      op_bit(Op::kEmbedCircuit) |
                                      op_bit(Op::kPredict);

/// One wire field: its name, which ops accept it, the bad_request message a
/// mistyped/out-of-range value earns, and the typed validate-and-store step.
/// parse_request is entirely driven by this table — adding a field is one
/// row, and any field the table does not map to the request's op is a
/// structured error, never silently ignored.
struct FieldSpec {
  const char* name;
  std::uint32_t ops;     ///< op_bit mask of ops that accept the field
  const char* type_msg;  ///< error message when apply() rejects the value
  bool (*apply)(const Json& value, Request* out);
};

const FieldSpec kFieldSpecs[] = {
    {"netlist", kNetlistOps, "'netlist' must be a string",
     [](const Json& v, Request* out) {
       if (!v.is_string()) return false;
       out->netlist_text = v.as_string();
       return true;
     }},
    {"k_hop", kNetlistOps, "'k_hop' must be an integer in [0,16]",
     [](const Json& v, Request* out) {
       const double d = v.as_number(-1.0);
       if (!v.is_number() || d != std::floor(d) || d < 0 || d > 16) {
         return false;
       }
       out->k_hop = static_cast<int>(d);
       return true;
     }},
    {"max_cone_gates", kNetlistOps, "'max_cone_gates' must be an integer >= 1",
     [](const Json& v, Request* out) {
       const double d = v.as_number(0.0);
       if (!v.is_number() || d != std::floor(d) || d < 1) return false;
       out->max_cone_gates = static_cast<std::size_t>(v.as_int());
       return true;
     }},
    {"task", op_bit(Op::kPredict), "'task' must be a string",
     [](const Json& v, Request* out) {
       if (!v.is_string()) return false;
       out->task = v.as_string();
       return true;
     }},
    {"model",
     kNetlistOps | op_bit(Op::kReload) | op_bit(Op::kModelLoad) |
         op_bit(Op::kModelUnload),
     "'model' must be a non-empty string",
     [](const Json& v, Request* out) {
       if (!v.is_string() || v.as_string().empty()) return false;
       out->model = v.as_string();
       return true;
     }},
    {"model_prefix", op_bit(Op::kReload) | op_bit(Op::kModelLoad),
     "'model_prefix' must be a non-empty string",
     [](const Json& v, Request* out) {
       if (!v.is_string() || v.as_string().empty()) return false;
       out->model_prefix = v.as_string();
       return true;
     }},
    {"quantize", op_bit(Op::kModelLoad), "'quantize' must be a boolean",
     [](const Json& v, Request* out) {
       if (!v.is_bool()) return false;
       out->quantize = v.as_bool() ? 1 : 0;
       return true;
     }},
};

/// Required fields, checked after the per-field pass: (ops mask, request
/// member emptiness probe, field name for the error message).
struct RequiredSpec {
  std::uint32_t ops;
  bool (*missing)(const Request& req);
  const char* name;
};

const RequiredSpec kRequiredSpecs[] = {
    {kNetlistOps, [](const Request& r) { return r.netlist_text.empty(); },
     "netlist"},
    {op_bit(Op::kPredict), [](const Request& r) { return r.task.empty(); },
     "task"},
    {op_bit(Op::kModelLoad) | op_bit(Op::kModelUnload),
     [](const Request& r) { return r.model.empty(); }, "model"},
    {op_bit(Op::kModelLoad),
     [](const Request& r) { return r.model_prefix.empty(); }, "model_prefix"},
};

}  // namespace

Request parse_request(const std::string& line) {
  Request req;
  Json doc;
  std::string error;
  if (!Json::parse(line, &doc, &error)) {
    req.parse_error = ErrorCode::kBadJson;
    req.parse_message = "request line is not valid JSON: " + error;
    return req;
  }
  if (!doc.is_object()) {
    req.parse_error = ErrorCode::kBadJson;
    req.parse_message = "request must be a JSON object";
    return req;
  }
  if (const Json* id = doc.find("id")) {
    // Clients commonly send numeric ids; echo those back textually too.
    req.id = id->is_string() ? id->as_string() : id->dump();
  }
  const Json* op = doc.find("op");
  if (!op || !op->is_string()) {
    req.parse_error = ErrorCode::kBadRequest;
    req.parse_message = "missing string field 'op'";
    return req;
  }
  if (!op_from_name(op->as_string(), &req.op)) {
    req.op = Op::kInvalid;
    req.parse_error = ErrorCode::kBadRequest;
    req.parse_message = "unknown op '" + op->as_string() + "'";
    return req;
  }
  // Single table-driven pass over the request's fields. A field the table
  // does not know, or knows but not for this op, is a client error naming
  // the field — a typo like "khop" must not silently run with defaults (and
  // cache that result). A present-but-mistyped value likewise never
  // defaults: {"k_hop":"3"} is rejected, not run with k_hop=0.
  const std::uint32_t bit = op_bit(req.op);
  for (const auto& member : doc.members()) {
    if (member.first == "id" || member.first == "op") continue;
    const FieldSpec* spec = nullptr;
    for (const FieldSpec& candidate : kFieldSpecs) {
      if (member.first == candidate.name) {
        spec = &candidate;
        break;
      }
    }
    if (spec == nullptr) {
      req.parse_error = ErrorCode::kBadRequest;
      req.parse_message = "unknown field '" + member.first + "' for op '" +
                          op_name(req.op) + "'";
      return req;
    }
    if ((spec->ops & bit) == 0) {
      req.parse_error = ErrorCode::kBadRequest;
      req.parse_message = "field '" + member.first +
                          "' is not accepted by op '" + op_name(req.op) + "'";
      return req;
    }
    if (!spec->apply(member.second, &req)) {
      req.parse_error = ErrorCode::kBadRequest;
      req.parse_message = spec->type_msg;
      return req;
    }
  }
  for (const RequiredSpec& required : kRequiredSpecs) {
    if ((required.ops & bit) != 0 && required.missing(req)) {
      req.parse_error = ErrorCode::kBadRequest;
      req.parse_message = std::string("op '") + op_name(req.op) +
                          "' requires field '" + required.name + "'";
      return req;
    }
  }
  return req;
}

std::string render_response(const Response& response) {
  std::string out;
  out.reserve(64 + response.result_json.size());
  out += "{\"id\":\"";
  out += json_escape(response.id);
  out += "\",\"op\":\"";
  out += op_name(response.op);
  out += "\"";
  if (response.ok()) {
    out += ",\"status\":\"ok\",\"cached\":";
    out += response.cached ? "true" : "false";
    out += ",\"result\":";
    out += response.result_json.empty() ? "{}" : response.result_json;
  } else {
    out += ",\"status\":\"error\",\"error\":{\"code\":\"";
    out += error_code_name(response.error);
    out += "\",\"message\":\"";
    out += json_escape(response.error_message);
    out += "\"";
    if (!response.detail.empty()) {
      out += ",\"detail\":[";
      for (std::size_t i = 0; i < response.detail.size(); ++i) {
        if (i) out += ',';
        out += '"';
        out += json_escape(response.detail[i]);
        out += '"';
      }
      out += ']';
    }
    out += "}";
  }
  out += "}";
  return out;
}

std::string mat_to_json(const Mat& m) {
  std::string out;
  out.reserve(16 + m.v.size() * 12);
  out += "{\"rows\":";
  out += std::to_string(m.rows);
  out += ",\"cols\":";
  out += std::to_string(m.cols);
  out += ",\"data\":[";
  char buf[40];
  for (std::size_t i = 0; i < m.v.size(); ++i) {
    if (i) out += ',';
    std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(m.v[i]));
    out += buf;
  }
  out += "]}";
  return out;
}

bool mat_from_json(const Json& j, Mat* out) {
  const Json* rows = j.find("rows");
  const Json* cols = j.find("cols");
  const Json* data = j.find("data");
  if (!rows || !cols || !data || !rows->is_number() || !cols->is_number() ||
      !data->is_array()) {
    return false;
  }
  const long long rl = rows->as_int(-1);
  const long long cl = cols->as_int(-1);
  if (rl < 0 || cl < 0 || rl > std::numeric_limits<int>::max() ||
      cl > std::numeric_limits<int>::max()) {
    return false;
  }
  const int r = static_cast<int>(rl);
  const int c = static_cast<int>(cl);
  if (r < 0 || c < 0 ||
      data->items().size() != static_cast<std::size_t>(r) * static_cast<std::size_t>(c)) {
    return false;
  }
  *out = Mat(r, c);
  for (std::size_t i = 0; i < data->items().size(); ++i) {
    if (!data->items()[i].is_number()) return false;
    out->v[i] = static_cast<float>(data->items()[i].as_number());
  }
  return true;
}

}  // namespace nettag::serve
