// Canonical structural hashing for the content-addressed result cache
// (docs/ARCHITECTURE.md §7.2).
//
// The hash is computed by Weisfeiler-Lehman-style label refinement: each
// gate starts from (cell type, primary-output flag), then absorbs its
// fanins' labels *in pin order* (fanin order is functional for MUX/AOI/OAI
// cells) for a fixed number of rounds. Instance names never enter the hash.
// How the final labels are folded depends on what the cached result looks
// like:
//
//   * order-insensitive ops (embed_cone, embed_circuit, predict) return
//     pooled values with no per-gate rows, so the fold sorts the label
//     multiset and an isomorphic resubmission with *reordered* gate
//     declarations may still hit;
//   * per-node ops (embed_gates) return one matrix row per gate in
//     declaration order, so the fold keeps declaration order: a reordered
//     isomorphic netlist gets a different key and recomputes rather than
//     receiving rows assigned to the wrong gates. Renaming alone still hits.
//
// WL refinement with a bounded round count is NOT an isomorphism invariant:
// structurally distinct circuits whose gates all share identical
// bounded-radius neighborhoods (e.g. one long ring of identical cells vs.
// two shorter ones) collide deterministically, not with negligible random
// probability. The cache therefore never trusts the hash alone: every entry
// stores the exact canonical fingerprint of the netlist that produced it
// (canonical_fingerprint below), and a key hit whose fingerprint differs is
// treated as a miss. A collision can cost a recompute; it can never replay
// the wrong circuit's result.
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.hpp"

namespace nettag::serve {

/// WL-refinement hash over cell types + ordered fanins. `rounds` bounds the
/// neighborhood radius each label absorbs; 3 distinguishes everything the
/// generated corpus produces while staying O(rounds * edges).
/// `order_sensitive` selects the final fold: false sorts the label multiset
/// (reordered isomorphic netlists collide on purpose), true folds labels in
/// gate declaration order (required when the cached payload has per-gate
/// rows keyed by declaration position).
std::uint64_t structural_hash(const Netlist& nl, int rounds = 3,
                              bool order_sensitive = false);

/// Exact serialization of the netlist structure, used to verify cache hits
/// (a WL hash collision must read as a miss, not replay a wrong result).
/// With `order_sensitive` false, gates are emitted in a canonical order
/// derived from their final WL labels, so renamed *and* reordered isomorphic
/// netlists fingerprint identically when the labels fully separate the
/// gates; label ties fall back to declaration order, which can only turn a
/// would-be hit into a safe miss. With `order_sensitive` true, gates are
/// emitted in declaration order. Names never appear.
std::string canonical_fingerprint(const Netlist& nl, bool order_sensitive,
                                  int rounds = 3);

/// Result-cache addressing for one request: `key` is the fast lookup key
/// (structural hash plus every request parameter that changes the answer —
/// op, k_hop, cone cap, task head); `fingerprint` is the exact discriminator
/// the cache compares on a key hit.
struct CacheKey {
  std::string key;
  std::string fingerprint;
};

/// Builds the cache key for a request. `per_node_output` must be true for
/// ops whose result carries one row per gate in declaration order
/// (embed_gates); it switches both the hash fold and the fingerprint to
/// declaration order.
CacheKey cache_key(const Netlist& nl, const char* op, int k_hop,
                   std::size_t max_cone_gates, const std::string& task,
                   bool per_node_output);

}  // namespace nettag::serve
