// Canonical structural hashing for the content-addressed result cache
// (docs/ARCHITECTURE.md §7.2).
//
// The hash is computed by Weisfeiler-Lehman-style label refinement: each
// gate starts from (cell type, primary-output flag), then absorbs its
// fanins' labels *in pin order* (fanin order is functional for MUX/AOI/OAI
// cells) for a fixed number of rounds; the circuit hash folds the sorted
// multiset of final labels. Instance names and declaration order never enter
// the hash, so an isomorphic resubmission (renamed or reordered netlist)
// hits the cache, while any structural edit — cell swap, rewired pin,
// swapped asymmetric fanins — changes it.
//
// This is a hash, not a canonical form: distinct circuits can collide, but
// with 64-bit mixed labels plus the gate count folded in, collisions are
// negligible next to the embedding-model noise floor (and a collision only
// replays a cached embedding, it cannot crash the daemon).
#pragma once

#include <cstdint>
#include <string>

#include "netlist/netlist.hpp"

namespace nettag::serve {

/// WL-refinement hash over cell types + ordered fanins. `rounds` bounds the
/// neighborhood radius each label absorbs; 3 distinguishes everything the
/// generated corpus produces while staying O(rounds * edges).
std::uint64_t structural_hash(const Netlist& nl, int rounds = 3);

/// Full result-cache key: structural hash plus every request parameter that
/// changes the answer (op, k_hop, cone cap, task head).
std::string cache_key(const Netlist& nl, const char* op, int k_hop,
                      std::size_t max_cone_gates, const std::string& task);

}  // namespace nettag::serve
