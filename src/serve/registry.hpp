// Model replica registry for NetTAG-Serve (docs/ARCHITECTURE.md §12).
//
// One serving process hosts N named NetTag replicas, each loaded from its
// own checkpoint prefix, each hot-reloadable independently. Per replica the
// registry tracks the checkpoint prefix (the default `reload` target), the
// params CRC (namespacing its result-cache keys), the numeric backend
// (fp32 / int8 packed weights) and per-replica counters. All replicas share:
//   * one striped text-embedding cache — adopted from the first replica and
//     attached to every later load, with each replica's keys salted by its
//     weights CRC so replicas of the same checkpoint share entries while
//     different weights can never replay each other's rows;
//   * the process thread pool and the per-shape-signature memory plans
//     (plans depend on tensor shapes only, never on weights, so replicas
//     with equal architecture reuse them safely).
//
// Requests pin a ReplicaSnapshot: reload/unload swap the registry's state
// but never the model an in-flight request computes with, so reloading or
// unloading replica A cannot stall or corrupt replica B's traffic (or even
// A's own in-flight work).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/nettag.hpp"
#include "serve/protocol.hpp"

namespace nettag::serve {

/// Per-replica monotonic counters, shared between the registry entry and the
/// snapshots pinned by in-flight requests (so a request finishing after its
/// replica was replaced still counts against the name it served under).
struct ReplicaCounters {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> cache_misses{0};
  std::atomic<std::uint64_t> reloads{0};
};

/// What one request computes with: an owning handle on the model plus the
/// key-namespace facts. Valid for as long as the caller holds it, across any
/// number of reloads/unloads.
struct ReplicaSnapshot {
  std::string name;
  std::shared_ptr<const NetTag> model;
  std::uint32_t params_crc = 0;
  bool quantize = false;
  std::shared_ptr<ReplicaCounters> counters;

  /// Result-cache key namespace: replica name + weights CRC + backend. Two
  /// replicas (or two weight generations of one replica) never share keys.
  std::string cache_tag() const;
};

/// Point-in-time registry row for `stats` / `model_list`.
struct ReplicaInfo {
  std::string name;
  std::string prefix;
  std::uint32_t params_crc = 0;
  bool quantize = false;
  std::uint64_t reloads = 0;
  std::uint64_t requests = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

/// Result of a per-replica hot reload.
struct ReloadOutcome {
  bool ok = false;
  ErrorCode error = ErrorCode::kNone;  ///< kUnknownModel / kBadRequest /
                                       ///< kReloadFailed when !ok
  std::string message;
  std::string prefix;          ///< the prefix actually (re)loaded
  bool params_changed = false;
  std::uint32_t params_crc = 0;
};

class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Desired shared-cache layout, applied when the first replica donates
  /// its cache: total capacity in entries and stripe count (0 = keep the
  /// donating model's value). Call before the first add().
  void set_cache_layout(std::size_t capacity, std::size_t partitions);

  /// Registers an already-constructed model under `name`, replacing any
  /// existing replica of that name. The first model registered donates its
  /// text-embedding cache (capacity/stripes included) as the shared cache.
  /// `prefix` becomes the replica's default reload target ("" = reload must
  /// carry model_prefix). `quantize` packs int8 weights now and on reload.
  void add(const std::string& name, std::unique_ptr<NetTag> model,
           const std::string& prefix, bool quantize);

  /// `model_load`: loads `prefix` and registers it under `name` (replacing
  /// an existing replica). On failure returns false with *error set and the
  /// registry unchanged. The checkpoint load runs outside the registry
  /// mutex — concurrent requests keep serving.
  bool load(const std::string& name, const std::string& prefix, bool quantize,
            std::string* error);

  /// `model_unload`: removes `name`. False if not present. In-flight work
  /// pinned to the replica finishes normally; later requests for the name
  /// answer unknown_model.
  bool unload(const std::string& name);

  /// `reload`: hot-swaps `name` from `prefix_override` (empty = the
  /// replica's stored prefix). One reload per replica at a time; reloads of
  /// different replicas proceed concurrently. The checkpoint load runs
  /// outside the registry mutex; only the pointer swap synchronizes with
  /// snapshot(). A replica unloaded mid-reload stays unloaded (the fresh
  /// model is dropped, outcome kUnknownModel).
  ReloadOutcome reload(const std::string& name,
                       const std::string& prefix_override);

  /// Pins `name` for one request. False (out untouched) if not registered.
  bool snapshot(const std::string& name, ReplicaSnapshot* out) const;

  bool has(const std::string& name) const;
  std::size_t size() const;
  /// Rows sorted by name (std::map order) — stable for stats/model_list.
  std::vector<ReplicaInfo> list() const;

  /// Successful reloads across all replicas since startup.
  std::uint64_t total_reloads() const {
    return total_reloads_.load(std::memory_order_relaxed);
  }

  /// The shared text cache (null until the first add()).
  std::shared_ptr<TextEmbeddingCache> text_cache() const;

 private:
  struct Replica {
    std::string name;
    std::string prefix;
    std::shared_ptr<NetTag> model;
    std::uint32_t params_crc = 0;
    bool quantize = false;
    std::shared_ptr<ReplicaCounters> counters =
        std::make_shared<ReplicaCounters>();
    /// Serializes whole reload operations for this replica only.
    std::mutex reload_mu;
  };

  /// Fingerprints, attaches the shared cache (salted by CRC), and packs
  /// int8 weights when asked. Returns the CRC. Must run before the model is
  /// published to snapshots.
  std::uint32_t prepare(NetTag& model, bool quantize) const;

  std::shared_ptr<Replica> find(const std::string& name) const;

  mutable std::mutex mu_;  ///< guards replicas_ and text_cache_ pointers
  std::map<std::string, std::shared_ptr<Replica>> replicas_;
  std::shared_ptr<TextEmbeddingCache> text_cache_;
  std::size_t cache_capacity_ = 0;    ///< 0 = first model's own
  std::size_t cache_partitions_ = 0;  ///< 0 = first model's own
  std::atomic<std::uint64_t> total_reloads_{0};
};

}  // namespace nettag::serve
