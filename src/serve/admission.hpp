// Admission gate for NetTAG-Serve netlist ops (docs/ARCHITECTURE.md §7.3).
//
// The first pipeline stage of every netlist request, split out of Server so
// dispatch / registry / admission are separate concerns: parse the netlist
// text (unless the daemon's router already did), enforce the size bound,
// and run the src/analysis lint gate. Rejections are structured error
// responses (parse_error / too_large / lint_rejected), never exceptions.
// Admission is replica-independent — it runs before a model is touched, so
// its verdicts are identical for every replica.
#pragma once

#include <cstddef>

#include "analysis/lint.hpp"
#include "netlist/netlist.hpp"
#include "serve/metrics.hpp"
#include "serve/protocol.hpp"

namespace nettag::serve {

struct AdmissionConfig {
  /// Netlists above this many gates get kTooLarge.
  std::size_t max_gates = 20000;
  /// Strict admission: reject on lint *warnings* too (errors always reject).
  bool reject_warnings = false;
  /// Admission lint options (rule toggles, fanout bound).
  LintOptions lint;
};

class Admission {
 public:
  Admission(const AdmissionConfig& config, ServeMetrics* metrics)
      : config_(config), metrics_(metrics) {}

  /// Parses, bounds, and lints one request's netlist. Returns the admitted
  /// netlist — request.pre_parsed when the transport parsed it already,
  /// otherwise *local filled by parsing request.netlist_text — or nullptr
  /// with response's error/error_message/detail fields set. Thread-safe.
  const Netlist* admit(const Request& request, Netlist* local,
                       Response* response) const;

  const AdmissionConfig& config() const { return config_; }

 private:
  AdmissionConfig config_;
  ServeMetrics* metrics_;
};

}  // namespace nettag::serve
