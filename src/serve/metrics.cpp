#include "serve/metrics.hpp"

#include <algorithm>

namespace nettag::serve {

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kParse: return "parse";
    case Stage::kLint: return "lint";
    case Stage::kTagBuild: return "tag_build";
    case Stage::kTextEncode: return "text_encode";
    case Stage::kTagFormer: return "tagformer";
  }
  return "unknown";
}

void ServeMetrics::record_request(bool ok, double latency_seconds) {
  std::lock_guard<std::mutex> lk(mu_);
  ++total_;
  if (ok) {
    ++ok_;
  } else {
    ++errors_;
  }
  if (latency_ring_.size() < kLatencyWindow) {
    latency_ring_.push_back(latency_seconds);
  } else {
    latency_ring_[ring_next_] = latency_seconds;
    ring_next_ = (ring_next_ + 1) % kLatencyWindow;
  }
  max_latency_ = std::max(max_latency_, latency_seconds);
}

void ServeMetrics::record_batch(std::size_t size) {
  std::lock_guard<std::mutex> lk(mu_);
  ++batches_;
  if (batch_hist_.size() <= size) batch_hist_.resize(size + 1, 0);
  ++batch_hist_[size];
}

void ServeMetrics::record_stage(Stage stage, double seconds) {
  std::lock_guard<std::mutex> lk(mu_);
  stage_seconds_[static_cast<int>(stage)] += seconds;
}

ServeMetrics::Snapshot ServeMetrics::snapshot() const {
  Snapshot s;
  s.uptime_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start_)
                         .count();
  std::lock_guard<std::mutex> lk(mu_);
  s.requests_total = total_;
  s.requests_ok = ok_;
  s.requests_error = errors_;
  s.qps = s.uptime_seconds > 0
              ? static_cast<double>(total_) / s.uptime_seconds
              : 0.0;
  if (!latency_ring_.empty()) {
    std::vector<double> sorted = latency_ring_;
    std::sort(sorted.begin(), sorted.end());
    auto pct = [&sorted](double p) {
      const std::size_t idx = static_cast<std::size_t>(
          p * static_cast<double>(sorted.size() - 1) + 0.5);
      return sorted[std::min(idx, sorted.size() - 1)] * 1e3;
    };
    s.p50_ms = pct(0.50);
    s.p90_ms = pct(0.90);
    s.p99_ms = pct(0.99);
    s.max_ms = max_latency_ * 1e3;
  }
  s.batches = batches_;
  for (std::size_t size = 0; size < batch_hist_.size(); ++size) {
    if (batch_hist_[size]) s.batch_histogram.emplace_back(size, batch_hist_[size]);
  }
  for (int i = 0; i < kNumStages; ++i) s.stage_seconds[i] = stage_seconds_[i];
  return s;
}

Json snapshot_to_json(const ServeMetrics::Snapshot& snapshot) {
  Json j = Json::object();
  j.set("uptime_seconds", snapshot.uptime_seconds);
  j.set("requests_total", static_cast<double>(snapshot.requests_total));
  j.set("requests_ok", static_cast<double>(snapshot.requests_ok));
  j.set("requests_error", static_cast<double>(snapshot.requests_error));
  j.set("qps", snapshot.qps);
  Json latency = Json::object();
  latency.set("p50", snapshot.p50_ms);
  latency.set("p90", snapshot.p90_ms);
  latency.set("p99", snapshot.p99_ms);
  latency.set("max", snapshot.max_ms);
  j.set("latency_ms", std::move(latency));
  j.set("batches", static_cast<double>(snapshot.batches));
  Json hist = Json::object();
  for (const auto& [size, count] : snapshot.batch_histogram) {
    hist.set(std::to_string(size), static_cast<double>(count));
  }
  j.set("batch_size_histogram", std::move(hist));
  Json stages = Json::object();
  for (int i = 0; i < kNumStages; ++i) {
    stages.set(stage_name(static_cast<Stage>(i)), snapshot.stage_seconds[i]);
  }
  j.set("stage_seconds", std::move(stages));
  return j;
}

}  // namespace nettag::serve
