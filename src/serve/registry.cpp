#include "serve/registry.hpp"

#include <stdexcept>
#include <utility>

#include "nn/packed.hpp"
#include "util/checksum.hpp"

namespace nettag::serve {

void ModelRegistry::set_cache_layout(std::size_t capacity,
                                     std::size_t partitions) {
  std::lock_guard<std::mutex> lk(mu_);
  cache_capacity_ = capacity;
  cache_partitions_ = partitions;
}

std::string ReplicaSnapshot::cache_tag() const {
  std::string tag = "|m";
  tag += name;
  tag += "|w";
  tag += crc32_hex(params_crc);
  tag += quantize ? "|int8" : "|fp32";
  return tag;
}

std::uint32_t ModelRegistry::prepare(NetTag& model, bool quantize) const {
  const std::uint32_t crc = params_fingerprint(model);
  // Salt the shared text cache's keys with the weights CRC: cached rows are
  // encoder outputs, so two weight sets must never share them, while two
  // replicas of one checkpoint should.
  model.share_text_cache(text_cache(), "w" + crc32_hex(crc) + "|");
  // Packing happens after the fingerprint (it hashes fp32 values only, but
  // the ordering makes the independence obvious).
  if (quantize) pack_model_weights(model);
  return crc;
}

void ModelRegistry::add(const std::string& name, std::unique_ptr<NetTag> model,
                        const std::string& prefix, bool quantize) {
  auto rep = std::make_shared<Replica>();
  rep->name = name;
  rep->prefix = prefix;
  rep->quantize = quantize;
  std::shared_ptr<NetTag> shared(std::move(model));
  {
    // The first replica donates its cache as the process-wide one, resized
    // to the configured serving layout (--text-cache-entries capacity, one
    // stripe per daemon shard).
    std::lock_guard<std::mutex> lk(mu_);
    if (!text_cache_) {
      text_cache_ = shared->text_cache_ptr();
      if (cache_capacity_ != 0) text_cache_->set_capacity(cache_capacity_);
      if (cache_partitions_ != 0) {
        text_cache_->set_partitions(cache_partitions_);
      }
    }
  }
  rep->params_crc = prepare(*shared, quantize);
  rep->model = std::move(shared);
  std::lock_guard<std::mutex> lk(mu_);
  replicas_[name] = std::move(rep);
}

bool ModelRegistry::load(const std::string& name, const std::string& prefix,
                         bool quantize, std::string* error) {
  std::unique_ptr<NetTag> model;
  try {
    model = load_checkpoint(prefix);
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
  add(name, std::move(model), prefix, quantize);
  return true;
}

bool ModelRegistry::unload(const std::string& name) {
  std::lock_guard<std::mutex> lk(mu_);
  return replicas_.erase(name) > 0;
}

ReloadOutcome ModelRegistry::reload(const std::string& name,
                                    const std::string& prefix_override) {
  ReloadOutcome outcome;
  std::shared_ptr<Replica> rep = find(name);
  if (!rep) {
    outcome.error = ErrorCode::kUnknownModel;
    outcome.message = "no model loaded under '" + name + "'";
    return outcome;
  }
  // One reload per replica at a time; reloads of *different* replicas (and
  // all request traffic) proceed concurrently. The slow checkpoint load
  // happens outside mu_, so snapshots keep being served and only the
  // pointer swap itself synchronizes with them.
  std::lock_guard<std::mutex> reload_lk(rep->reload_mu);
  std::string prefix = prefix_override;
  if (prefix.empty()) {
    std::lock_guard<std::mutex> lk(mu_);
    prefix = rep->prefix;
  }
  if (prefix.empty()) {
    outcome.error = ErrorCode::kBadRequest;
    outcome.message =
        "reload needs 'model_prefix' (server has no configured default)";
    return outcome;
  }
  try {
    std::shared_ptr<NetTag> fresh = load_checkpoint(prefix);
    const std::uint32_t crc = prepare(*fresh, rep->quantize);
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto it = replicas_.find(name);
      if (it == replicas_.end() || it->second != rep) {
        // Unloaded (or replaced by model_load) while we were reading the
        // checkpoint: drop the fresh model, keep the registry's view.
        outcome.error = ErrorCode::kUnknownModel;
        outcome.message = "model '" + name + "' was unloaded during reload";
        return outcome;
      }
      outcome.params_changed = crc != rep->params_crc;
      rep->model = std::move(fresh);
      rep->params_crc = crc;
    }
    rep->counters->reloads.fetch_add(1, std::memory_order_relaxed);
    total_reloads_.fetch_add(1, std::memory_order_relaxed);
    outcome.ok = true;
    outcome.prefix = prefix;
    outcome.params_crc = crc;
  } catch (const std::exception& e) {
    outcome.error = ErrorCode::kReloadFailed;
    outcome.message = e.what();
  }
  return outcome;
}

bool ModelRegistry::snapshot(const std::string& name,
                             ReplicaSnapshot* out) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = replicas_.find(name);
  if (it == replicas_.end()) return false;
  const Replica& rep = *it->second;
  out->name = rep.name;
  out->model = rep.model;
  out->params_crc = rep.params_crc;
  out->quantize = rep.quantize;
  out->counters = rep.counters;
  return true;
}

bool ModelRegistry::has(const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  return replicas_.count(name) > 0;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return replicas_.size();
}

std::vector<ReplicaInfo> ModelRegistry::list() const {
  std::vector<ReplicaInfo> out;
  std::lock_guard<std::mutex> lk(mu_);
  out.reserve(replicas_.size());
  for (const auto& entry : replicas_) {
    const Replica& rep = *entry.second;
    ReplicaInfo info;
    info.name = rep.name;
    info.prefix = rep.prefix;
    info.params_crc = rep.params_crc;
    info.quantize = rep.quantize;
    info.reloads = rep.counters->reloads.load(std::memory_order_relaxed);
    info.requests = rep.counters->requests.load(std::memory_order_relaxed);
    info.cache_hits = rep.counters->cache_hits.load(std::memory_order_relaxed);
    info.cache_misses =
        rep.counters->cache_misses.load(std::memory_order_relaxed);
    out.push_back(std::move(info));
  }
  return out;
}

std::shared_ptr<TextEmbeddingCache> ModelRegistry::text_cache() const {
  std::lock_guard<std::mutex> lk(mu_);
  return text_cache_;
}

std::shared_ptr<ModelRegistry::Replica> ModelRegistry::find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = replicas_.find(name);
  return it == replicas_.end() ? nullptr : it->second;
}

}  // namespace nettag::serve
