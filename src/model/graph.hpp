// Dense graph utilities shared by TAGFormer, the layout encoder, and the
// GCN baselines: normalized adjacency construction and feature extraction
// from netlists / layout graphs.
//
// Graphs at cone scale (tens to a few hundred nodes) are represented
// densely; symmetric normalization with self-loops follows the standard GCN
// recipe (D^-1/2 (A + I) D^-1/2).
#pragma once

#include <utility>
#include <vector>

#include "netlist/netlist.hpp"
#include "nn/tensor.hpp"
#include "physical/analysis.hpp"

namespace nettag {

/// Directed edges driver->sink for a netlist (one per sink pin, deduped).
std::vector<std::pair<int, int>> netlist_edges(const Netlist& nl);

/// Symmetrically normalized dense adjacency with self loops over `n` nodes.
Mat normalized_adjacency(int n, const std::vector<std::pair<int, int>>& edges);

/// Adjacency for TAGFormer: n graph nodes plus a virtual [CLS] node at index
/// n connected to every node (paper §II-C), normalized as above. Result is
/// (n+1) x (n+1).
Mat tag_adjacency(int n, const std::vector<std::pair<int, int>>& edges);

/// Structural node features used by graph-only baselines and the
/// "w/o text attributes" ablation: one-hot cell type + normalized fanin /
/// fanout / depth + port/register/output flags.
Mat netlist_base_features(const Netlist& nl);
int netlist_base_feature_dim();

/// Physical characteristics vector x_phys per gate (paper §II-B: power,
/// area, delay, toggle rate, probability, load, cap, ...) — concatenated to
/// the text embedding at TAGFormer's input. Toggle/probability come from a
/// zero-wire activity propagation (the netlist-stage PrimeTime report).
Mat netlist_phys_features(const Netlist& nl);
int netlist_phys_feature_dim();

/// Node features for layout graphs (cap/res/load/delay/position).
Mat layout_features(const LayoutGraph& lg);
int layout_feature_dim();

}  // namespace nettag
