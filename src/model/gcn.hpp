// Plain GCN backbone used by every task-specific baseline (GNN-RE, ReIGNN,
// the timing GNN of [2], the PowPrediCT-style power GNN, and the FGNN /
// DeepGate-style AIG encoders). Standard D^-1/2(A+I)D^-1/2 propagation with
// ReLU, plus mean-pool graph readout.
#pragma once

#include <memory>
#include <vector>

#include "nn/layers.hpp"

namespace nettag {

struct GcnConfig {
  int in_dim = 0;
  int hidden = 48;
  int num_layers = 3;
  int out_dim = 48;
};

class Gcn : public Module {
 public:
  Gcn(const GcnConfig& config, Rng& rng);

  /// Node embeddings: N x out_dim.
  Tensor forward_nodes(const Tensor& feats, const Tensor& adj) const;

  /// Graph embedding: 1 x out_dim (mean pooled).
  Tensor forward_graph(const Tensor& feats, const Tensor& adj) const;

  const GcnConfig& config() const { return config_; }
  std::vector<Tensor> params() const override;

 private:
  GcnConfig config_;
  std::vector<std::unique_ptr<Linear>> layers_;
};

}  // namespace nettag
