#include "model/text_encoder.hpp"

#include "util/parallel.hpp"

namespace nettag {

TextEncoderConfig TextEncoderConfig::tiny() {
  TextEncoderConfig c;
  c.d_model = 16;
  c.num_layers = 1;
  c.num_heads = 2;
  c.d_ff = 32;
  c.out_dim = 48;
  return c;
}

TextEncoderConfig TextEncoderConfig::small() {
  TextEncoderConfig c;
  c.d_model = 32;
  c.num_layers = 2;
  c.num_heads = 2;
  c.d_ff = 64;
  c.out_dim = 48;
  return c;
}

TextEncoderConfig TextEncoderConfig::base() {
  TextEncoderConfig c;
  c.d_model = 48;
  c.num_layers = 2;
  c.num_heads = 4;
  c.d_ff = 96;
  c.out_dim = 48;
  return c;
}

TextEncoder::TextEncoder(const Vocab& vocab, const TextEncoderConfig& config,
                         Rng& rng)
    : vocab_(vocab), config_(config) {
  tok_emb_ = std::make_unique<EmbeddingLayer>(vocab.size(), config.d_model, rng);
  pos_emb_ = make_param(config.max_len, config.d_model, rng, 0.5f);
  for (int l = 0; l < config.num_layers; ++l) {
    blocks_.push_back(std::make_unique<TransformerBlock>(
        config.d_model, config.num_heads, config.d_ff, rng));
  }
  final_ln_ = std::make_unique<LayerNorm>(config.d_model);
  proj_ = std::make_unique<Linear>(config.d_model, config.out_dim, rng);
}

Tensor TextEncoder::encode_ids(const std::vector<int>& ids) const {
  std::vector<int> clipped = ids;
  if (static_cast<int>(clipped.size()) > config_.max_len) {
    clipped.resize(static_cast<std::size_t>(config_.max_len));
  }
  if (clipped.empty()) clipped.push_back(vocab_.cls_id());
  Tensor x = tok_emb_->forward(clipped);
  // Add position embeddings (slice the table to the sequence length).
  Tensor pos = slice_rows(pos_emb_, 0, static_cast<int>(clipped.size()));
  x = add(x, pos);
  for (const auto& blk : blocks_) x = blk->forward(x);
  x = final_ln_->forward(x);
  // Mean pooling over tokens, then projection (LLM2Vec-style pooling).
  return proj_->forward(mean_rows(x));
}

Tensor TextEncoder::encode(const std::string& text) const {
  return encode_ids(encode_text(vocab_, text,
                                static_cast<std::size_t>(config_.max_len)));
}

Tensor TextEncoder::encode_batch(const std::vector<std::string>& texts) const {
  // Per-text forwards are independent (pure reads of the weights); the
  // indexed fan-out keeps row order, so the result matches the serial loop.
  std::vector<Tensor> rows(texts.size());
  ThreadPool::instance().run_indexed(texts.size(), [&](std::size_t i) {
    rows[i] = encode(texts[i]);
  });
  return concat_rows(rows);
}

std::vector<Tensor> TextEncoder::params() const {
  std::vector<Tensor> out = tok_emb_->params();
  out.push_back(pos_emb_);
  for (const auto& blk : blocks_) {
    for (const Tensor& p : blk->params()) out.push_back(p);
  }
  for (const Tensor& p : final_ln_->params()) out.push_back(p);
  for (const Tensor& p : proj_->params()) out.push_back(p);
  return out;
}

Tensor stack_rows(const std::vector<Tensor>& rows) { return concat_rows(rows); }

namespace {

/// Per-stripe share of the total capacity: ceiling split, at least 1 entry
/// per stripe so a tiny capacity with many stripes still caches something.
std::size_t stripe_capacity(std::size_t total, std::size_t stripes) {
  if (stripes == 0) stripes = 1;
  const std::size_t share = (total + stripes - 1) / stripes;
  return share == 0 ? 1 : share;
}

}  // namespace

TextEmbeddingCache::TextEmbeddingCache(std::size_t max_entries)
    : total_capacity_(max_entries) {
  stripes_.push_back(std::make_unique<Stripe>(max_entries));
}

TextEmbeddingCache::Stripe& TextEmbeddingCache::stripe_for(
    const std::string& key) const {
  if (stripes_.size() == 1) return *stripes_[0];
  return *stripes_[std::hash<std::string>{}(key) % stripes_.size()];
}

bool TextEmbeddingCache::lookup(const std::string& key,
                                std::vector<float>* out) {
  Stripe& s = stripe_for(key);
  std::lock_guard<std::mutex> lk(s.mu);
  if (const std::vector<float>* row = s.map.get(key)) {
    ++s.hits;
    *out = *row;
    return true;
  }
  ++s.misses;
  return false;
}

void TextEmbeddingCache::insert(const std::string& key,
                                std::vector<float> row) {
  Stripe& s = stripe_for(key);
  std::lock_guard<std::mutex> lk(s.mu);
  s.evictions += s.map.put(key, std::move(row));
}

void TextEmbeddingCache::clear() {
  std::lock_guard<std::mutex> layout(layout_mu_);
  for (auto& s : stripes_) {
    std::lock_guard<std::mutex> lk(s->mu);
    s->map.clear();
  }
}

void TextEmbeddingCache::set_capacity(std::size_t max_entries) {
  std::lock_guard<std::mutex> layout(layout_mu_);
  total_capacity_ = max_entries;
  const std::size_t per = stripe_capacity(max_entries, stripes_.size());
  for (auto& s : stripes_) {
    std::lock_guard<std::mutex> lk(s->mu);
    s->evictions += s->map.set_capacity(per);
  }
}

void TextEmbeddingCache::set_partitions(std::size_t n) {
  if (n < 1) n = 1;
  if (n > 64) n = 64;
  std::lock_guard<std::mutex> layout(layout_mu_);
  if (n == stripes_.size()) return;
  const std::size_t per = stripe_capacity(total_capacity_, n);
  std::vector<std::unique_ptr<Stripe>> fresh;
  fresh.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    fresh.push_back(std::make_unique<Stripe>(per));
  }
  // Redistribute current entries by key hash (oldest-first per old stripe,
  // so relative recency survives within each new stripe) and carry the
  // counters over — repartitioning must not reset observability.
  for (auto& old : stripes_) {
    std::lock_guard<std::mutex> lk(old->mu);
    old->map.for_each_oldest_first(
        [&](const std::string& key, std::vector<float>& row) {
          Stripe& dst = n == 1
                            ? *fresh[0]
                            : *fresh[std::hash<std::string>{}(key) % n];
          dst.evictions += dst.map.put(key, std::move(row));
        });
    fresh[0]->hits += old->hits;
    fresh[0]->misses += old->misses;
    fresh[0]->evictions += old->evictions;
  }
  stripes_ = std::move(fresh);
}

std::size_t TextEmbeddingCache::partitions() const {
  std::lock_guard<std::mutex> layout(layout_mu_);
  return stripes_.size();
}

std::size_t TextEmbeddingCache::size() const {
  std::lock_guard<std::mutex> layout(layout_mu_);
  std::size_t total = 0;
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lk(s->mu);
    total += s->map.size();
  }
  return total;
}

std::size_t TextEmbeddingCache::capacity() const {
  std::lock_guard<std::mutex> layout(layout_mu_);
  return total_capacity_;
}

std::uint64_t TextEmbeddingCache::hits() const {
  std::lock_guard<std::mutex> layout(layout_mu_);
  std::uint64_t total = 0;
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lk(s->mu);
    total += s->hits;
  }
  return total;
}

std::uint64_t TextEmbeddingCache::misses() const {
  std::lock_guard<std::mutex> layout(layout_mu_);
  std::uint64_t total = 0;
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lk(s->mu);
    total += s->misses;
  }
  return total;
}

std::uint64_t TextEmbeddingCache::evictions() const {
  std::lock_guard<std::mutex> layout(layout_mu_);
  std::uint64_t total = 0;
  for (const auto& s : stripes_) {
    std::lock_guard<std::mutex> lk(s->mu);
    total += s->evictions;
  }
  return total;
}

}  // namespace nettag
