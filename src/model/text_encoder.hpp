// Bidirectional transformer text encoder: the ExprLLM / NV-Embed substitute.
//
// The paper initializes ExprLLM from LLM2Vec (Llama-3.1-8B with causal
// attention converted to bidirectional) and the RTL encoder from NV-Embed.
// We train the same *shape* of model from scratch at CPU scale: token +
// position embeddings, pre-norm transformer blocks with bidirectional
// attention, final layer norm, mean pooling, and a projection head. Three
// size tiers mirror the paper's Fig. 7 scaling axis (BERT-110M / 1.3B / 8B).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "expr/tokenizer.hpp"
#include "nn/layers.hpp"

namespace nettag {

struct TextEncoderConfig {
  int d_model = 48;
  int num_layers = 2;
  int num_heads = 4;
  int d_ff = 96;
  int max_len = 96;
  int out_dim = 48;  ///< projection output (the embedding dimension)
  /// Size tiers for the scaling study (Fig. 7).
  static TextEncoderConfig tiny();   ///< "BERT-110M" analog
  static TextEncoderConfig small();  ///< "Llama-1.3B" analog
  static TextEncoderConfig base();   ///< "Llama-8B" analog
};

/// Encodes attribute/RTL text into a fixed-size embedding (1 x out_dim).
class TextEncoder : public Module {
 public:
  TextEncoder(const Vocab& vocab, const TextEncoderConfig& config, Rng& rng);

  /// Embedding of one text (1 x out_dim). Training mode keeps the graph.
  Tensor encode(const std::string& text) const;
  Tensor encode_ids(const std::vector<int>& ids) const;

  /// Batch of texts stacked into rows (B x out_dim).
  Tensor encode_batch(const std::vector<std::string>& texts) const;

  const TextEncoderConfig& config() const { return config_; }
  const Vocab& vocab() const { return vocab_; }
  std::vector<Tensor> params() const override;

 private:
  const Vocab& vocab_;
  TextEncoderConfig config_;
  std::unique_ptr<EmbeddingLayer> tok_emb_;
  Tensor pos_emb_;  ///< max_len x d_model
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
  std::unique_ptr<LayerNorm> final_ln_;
  std::unique_ptr<Linear> proj_;
};

/// Concatenates per-text embeddings row-wise (helper shared by objectives).
Tensor stack_rows(const std::vector<Tensor>& rows);

}  // namespace nettag
