// Bidirectional transformer text encoder: the ExprLLM / NV-Embed substitute.
//
// The paper initializes ExprLLM from LLM2Vec (Llama-3.1-8B with causal
// attention converted to bidirectional) and the RTL encoder from NV-Embed.
// We train the same *shape* of model from scratch at CPU scale: token +
// position embeddings, pre-norm transformer blocks with bidirectional
// attention, final layer norm, mean pooling, and a projection head. Three
// size tiers mirror the paper's Fig. 7 scaling axis (BERT-110M / 1.3B / 8B).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "expr/tokenizer.hpp"
#include "nn/layers.hpp"
#include "util/lru.hpp"

namespace nettag {

struct TextEncoderConfig {
  int d_model = 48;
  int num_layers = 2;
  int num_heads = 4;
  int d_ff = 96;
  int max_len = 96;
  int out_dim = 48;  ///< projection output (the embedding dimension)
  /// Size tiers for the scaling study (Fig. 7).
  static TextEncoderConfig tiny();   ///< "BERT-110M" analog
  static TextEncoderConfig small();  ///< "Llama-1.3B" analog
  static TextEncoderConfig base();   ///< "Llama-8B" analog
};

/// Encodes attribute/RTL text into a fixed-size embedding (1 x out_dim).
class TextEncoder : public Module {
 public:
  TextEncoder(const Vocab& vocab, const TextEncoderConfig& config, Rng& rng);

  /// Embedding of one text (1 x out_dim). Training mode keeps the graph.
  Tensor encode(const std::string& text) const;
  Tensor encode_ids(const std::vector<int>& ids) const;

  /// Batch of texts stacked into rows (B x out_dim).
  Tensor encode_batch(const std::vector<std::string>& texts) const;

  const TextEncoderConfig& config() const { return config_; }
  const Vocab& vocab() const { return vocab_; }
  std::vector<Tensor> params() const override;

 private:
  const Vocab& vocab_;
  TextEncoderConfig config_;
  std::unique_ptr<EmbeddingLayer> tok_emb_;
  Tensor pos_emb_;  ///< max_len x d_model
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
  std::unique_ptr<LayerNorm> final_ln_;
  std::unique_ptr<Linear> proj_;
};

/// Concatenates per-text embeddings row-wise (helper shared by objectives).
Tensor stack_rows(const std::vector<Tensor>& rows);

/// Bounded thread-safe LRU cache for *frozen* text-encoder embeddings,
/// keyed by the packed token-id sequence (attribute tokenization anonymizes
/// instance names, so structurally identical attributes share one entry).
///
/// The encoder is frozen at inference time, so a cached row is always valid;
/// boundedness matters because a serving daemon sees an unbounded stream of
/// distinct attributes and the old unbounded map grew without limit under
/// sustained traffic. Hit/miss/eviction counters feed the serve `stats`
/// endpoint. Lookup and insert take a mutex; callers run the encode itself
/// outside the lock (a racing duplicate encode produces the identical value,
/// so which insert wins does not affect results).
class TextEmbeddingCache {
 public:
  static constexpr std::size_t kDefaultEntries = 4096;

  explicit TextEmbeddingCache(std::size_t max_entries = kDefaultEntries)
      : map_(max_entries) {}

  /// Copies the cached row into *out and promotes the entry. Counts a hit
  /// or a miss either way.
  bool lookup(const std::string& key, std::vector<float>* out);

  /// Inserts (or overwrites) one row, evicting the coldest beyond capacity.
  void insert(const std::string& key, std::vector<float> row);

  void clear();
  void set_capacity(std::size_t max_entries);

  std::size_t size() const;
  std::size_t capacity() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

 private:
  mutable std::mutex mu_;
  LruMap<std::string, std::vector<float>> map_;
  std::uint64_t hits_ = 0, misses_ = 0, evictions_ = 0;
};

}  // namespace nettag
