// Bidirectional transformer text encoder: the ExprLLM / NV-Embed substitute.
//
// The paper initializes ExprLLM from LLM2Vec (Llama-3.1-8B with causal
// attention converted to bidirectional) and the RTL encoder from NV-Embed.
// We train the same *shape* of model from scratch at CPU scale: token +
// position embeddings, pre-norm transformer blocks with bidirectional
// attention, final layer norm, mean pooling, and a projection head. Three
// size tiers mirror the paper's Fig. 7 scaling axis (BERT-110M / 1.3B / 8B).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "expr/tokenizer.hpp"
#include "nn/layers.hpp"
#include "util/lru.hpp"

namespace nettag {

struct TextEncoderConfig {
  int d_model = 48;
  int num_layers = 2;
  int num_heads = 4;
  int d_ff = 96;
  int max_len = 96;
  int out_dim = 48;  ///< projection output (the embedding dimension)
  /// Size tiers for the scaling study (Fig. 7).
  static TextEncoderConfig tiny();   ///< "BERT-110M" analog
  static TextEncoderConfig small();  ///< "Llama-1.3B" analog
  static TextEncoderConfig base();   ///< "Llama-8B" analog
};

/// Encodes attribute/RTL text into a fixed-size embedding (1 x out_dim).
class TextEncoder : public Module {
 public:
  TextEncoder(const Vocab& vocab, const TextEncoderConfig& config, Rng& rng);

  /// Embedding of one text (1 x out_dim). Training mode keeps the graph.
  Tensor encode(const std::string& text) const;
  Tensor encode_ids(const std::vector<int>& ids) const;

  /// Batch of texts stacked into rows (B x out_dim).
  Tensor encode_batch(const std::vector<std::string>& texts) const;

  const TextEncoderConfig& config() const { return config_; }
  const Vocab& vocab() const { return vocab_; }
  std::vector<Tensor> params() const override;

 private:
  const Vocab& vocab_;
  TextEncoderConfig config_;
  std::unique_ptr<EmbeddingLayer> tok_emb_;
  Tensor pos_emb_;  ///< max_len x d_model
  std::vector<std::unique_ptr<TransformerBlock>> blocks_;
  std::unique_ptr<LayerNorm> final_ln_;
  std::unique_ptr<Linear> proj_;
};

/// Concatenates per-text embeddings row-wise (helper shared by objectives).
Tensor stack_rows(const std::vector<Tensor>& rows);

/// Bounded thread-safe LRU cache for *frozen* text-encoder embeddings,
/// keyed by the packed token-id sequence (attribute tokenization anonymizes
/// instance names, so structurally identical attributes share one entry).
///
/// The encoder is frozen at inference time, so a cached row is always valid;
/// boundedness matters because a serving daemon sees an unbounded stream of
/// distinct attributes and the old unbounded map grew without limit under
/// sustained traffic. Hit/miss/eviction counters feed the serve `stats`
/// endpoint. Lookup and insert take a per-stripe mutex; callers run the
/// encode itself outside the lock (a racing duplicate encode produces the
/// identical value, so which insert wins does not affect results).
///
/// The cache is internally *lock-striped*: keys hash onto one of
/// `partitions()` independent (mutex, LruMap) stripes, so the shard workers
/// of the socket daemon (src/net) do not serialize on one text-cache mutex.
/// The default is one stripe — exactly the previous single-lock behavior;
/// the daemon raises it to its shard count at startup. Capacity is the
/// *total* across stripes; LRU age is per-stripe (a key evicts only against
/// keys in its own stripe), which bounds memory identically and only
/// reshuffles which cold entry goes first.
class TextEmbeddingCache {
 public:
  static constexpr std::size_t kDefaultEntries = 4096;

  explicit TextEmbeddingCache(std::size_t max_entries = kDefaultEntries);

  /// Copies the cached row into *out and promotes the entry. Counts a hit
  /// or a miss either way.
  bool lookup(const std::string& key, std::vector<float>* out);

  /// Inserts (or overwrites) one row, evicting the coldest beyond capacity.
  void insert(const std::string& key, std::vector<float> row);

  void clear();
  void set_capacity(std::size_t max_entries);
  /// Re-partitions into `n` stripes (clamped to [1, 64]), redistributing
  /// current entries by key hash; counters are kept. Not a hot-path call —
  /// the daemon does this once before traffic, and it must not race with
  /// lookups/inserts (it rebuilds the stripe vector).
  void set_partitions(std::size_t n);
  std::size_t partitions() const;

  std::size_t size() const;
  std::size_t capacity() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

 private:
  struct Stripe {
    std::mutex mu;
    LruMap<std::string, std::vector<float>> map;
    std::uint64_t hits = 0, misses = 0, evictions = 0;
    explicit Stripe(std::size_t cap) : map(cap) {}
  };
  Stripe& stripe_for(const std::string& key) const;

  /// Stripe layout (count, per-stripe capacity) is fixed between the
  /// configuration calls above; per-key operations lock only their stripe.
  /// `layout_mu_` guards the whole-cache walks (size/clear/counters).
  mutable std::mutex layout_mu_;
  std::size_t total_capacity_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
};

}  // namespace nettag
