// TAGFormer: the graph-transformer half of NetTAG (SGFormer backbone
// substitute, paper §II-C).
//
// Takes per-gate input features (ExprLLM text embedding concatenated with
// the physical characteristics vector), refines them with interleaved
// global self-attention and graph convolution over the netlist topology,
// and emits per-gate embeddings plus a graph-level [CLS] embedding. The
// [CLS] node is virtual: a learned input row connected to every gate.
#pragma once

#include <memory>
#include <vector>

#include "nn/layers.hpp"

namespace nettag {

struct TagFormerConfig {
  int in_dim = 0;      ///< set by caller: text_emb_dim + phys_dim
  int d_model = 64;
  int num_layers = 2;
  int out_dim = 48;    ///< final embedding dimension
};

class TagFormer : public Module {
 public:
  struct Output {
    Tensor nodes;  ///< N x out_dim gate embeddings
    Tensor cls;    ///< 1 x out_dim graph embedding
  };

  TagFormer(const TagFormerConfig& config, Rng& rng);

  /// `feats`: N x in_dim node features; `adj_with_cls`: (N+1)x(N+1)
  /// normalized adjacency from tag_adjacency() (CLS at index N).
  Output forward(const Tensor& feats, const Tensor& adj_with_cls) const;

  const TagFormerConfig& config() const { return config_; }
  std::vector<Tensor> params() const override;

 private:
  TagFormerConfig config_;
  Tensor cls_feat_;  ///< learned 1 x in_dim CLS input row
  std::unique_ptr<Linear> proj_in_;
  struct Layer {
    std::unique_ptr<MultiHeadAttention> attn;
    std::unique_ptr<LayerNorm> ln_attn;
    std::unique_ptr<Linear> gcn;
    std::unique_ptr<LayerNorm> ln_gcn;
  };
  std::vector<Layer> layers_;
  std::unique_ptr<Linear> proj_out_;
};

}  // namespace nettag
