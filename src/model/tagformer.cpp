#include "model/tagformer.hpp"

namespace nettag {

TagFormer::TagFormer(const TagFormerConfig& config, Rng& rng) : config_(config) {
  cls_feat_ = make_param(1, config.in_dim, rng, 0.5f);
  proj_in_ = std::make_unique<Linear>(config.in_dim, config.d_model, rng);
  for (int l = 0; l < config.num_layers; ++l) {
    Layer layer;
    layer.attn = std::make_unique<MultiHeadAttention>(config.d_model, 2, rng);
    layer.ln_attn = std::make_unique<LayerNorm>(config.d_model);
    layer.gcn = std::make_unique<Linear>(config.d_model, config.d_model, rng);
    layer.ln_gcn = std::make_unique<LayerNorm>(config.d_model);
    layers_.push_back(std::move(layer));
  }
  // Jumping-knowledge output: the final projection sees both the refined
  // representation and the input projection, so gate-level text semantics
  // survive the structural mixing (TAGFormer "refines" ExprLLM embeddings
  // rather than replacing them).
  proj_out_ = std::make_unique<Linear>(2 * config.d_model, config.out_dim, rng);
}

TagFormer::Output TagFormer::forward(const Tensor& feats,
                                     const Tensor& adj_with_cls) const {
  const int n = feats->value.rows;
  // Append the virtual CLS node's learned feature row.
  Tensor x = concat_rows({feats, cls_feat_});
  x = proj_in_->forward(x);
  const Tensor x0 = x;
  for (const Layer& layer : layers_) {
    // Global attention (SGFormer's "simple global attention" role).
    x = layer.ln_attn->forward(add(x, layer.attn->forward(x)));
    // Graph propagation over the netlist topology.
    Tensor conv = relu(layer.gcn->forward(matmul(adj_with_cls, x)));
    x = layer.ln_gcn->forward(add(x, conv));
  }
  x = proj_out_->forward(concat_cols(x, x0));
  Output out;
  out.nodes = slice_rows(x, 0, n);
  out.cls = slice_rows(x, n, 1);
  return out;
}

std::vector<Tensor> TagFormer::params() const {
  std::vector<Tensor> out{cls_feat_};
  for (const Tensor& p : proj_in_->params()) out.push_back(p);
  for (const Layer& layer : layers_) {
    for (const Tensor& p : layer.attn->params()) out.push_back(p);
    for (const Tensor& p : layer.ln_attn->params()) out.push_back(p);
    for (const Tensor& p : layer.gcn->params()) out.push_back(p);
    for (const Tensor& p : layer.ln_gcn->params()) out.push_back(p);
  }
  for (const Tensor& p : proj_out_->params()) out.push_back(p);
  return out;
}

}  // namespace nettag
