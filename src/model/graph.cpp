#include "model/graph.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace nettag {

std::vector<std::pair<int, int>> netlist_edges(const Netlist& nl) {
  std::set<std::pair<int, int>> uniq;
  for (const Gate& g : nl.gates()) {
    for (GateId f : g.fanins) {
      uniq.emplace(static_cast<int>(f), static_cast<int>(g.id));
    }
  }
  return {uniq.begin(), uniq.end()};
}

Mat normalized_adjacency(int n, const std::vector<std::pair<int, int>>& edges) {
  Mat a(n, n);
  for (int i = 0; i < n; ++i) a.at(i, i) = 1.f;
  for (const auto& [u, v] : edges) {
    a.at(u, v) = 1.f;
    a.at(v, u) = 1.f;
  }
  std::vector<float> deg(static_cast<std::size_t>(n), 0.f);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) deg[static_cast<std::size_t>(i)] += a.at(i, j);
  }
  for (int i = 0; i < n; ++i) {
    const float di = 1.f / std::sqrt(std::max(deg[static_cast<std::size_t>(i)], 1.f));
    for (int j = 0; j < n; ++j) {
      const float dj = 1.f / std::sqrt(std::max(deg[static_cast<std::size_t>(j)], 1.f));
      a.at(i, j) *= di * dj;
    }
  }
  return a;
}

Mat tag_adjacency(int n, const std::vector<std::pair<int, int>>& edges) {
  std::vector<std::pair<int, int>> with_cls = edges;
  for (int i = 0; i < n; ++i) with_cls.emplace_back(i, n);
  return normalized_adjacency(n + 1, with_cls);
}

int netlist_base_feature_dim() { return kNumCellTypes + 7; }

Mat netlist_base_features(const Netlist& nl) {
  const int n = static_cast<int>(nl.size());
  Mat f(n, netlist_base_feature_dim());
  // Depth for normalization.
  std::vector<int> depth(nl.size(), 0);
  int max_depth = 1;
  for (GateId id : nl.topo_order()) {
    const Gate& g = nl.gate(id);
    if (g.type == CellType::kDff || g.type == CellType::kPort) continue;
    int d = 0;
    for (GateId x : g.fanins) d = std::max(d, depth[static_cast<std::size_t>(x)] + 1);
    depth[static_cast<std::size_t>(id)] = d;
    max_depth = std::max(max_depth, d);
  }
  for (const Gate& g : nl.gates()) {
    const int i = static_cast<int>(g.id);
    f.at(i, static_cast<int>(g.type)) = 1.f;
    int j = kNumCellTypes;
    f.at(i, j++) = static_cast<float>(g.fanins.size()) / 4.f;
    f.at(i, j++) = std::min(static_cast<float>(g.fanouts.size()) / 8.f, 2.f);
    f.at(i, j++) = static_cast<float>(depth[static_cast<std::size_t>(g.id)]) /
                   static_cast<float>(max_depth);
    f.at(i, j++) = g.is_primary_output ? 1.f : 0.f;
    f.at(i, j++) = g.type == CellType::kDff ? 1.f : 0.f;
    f.at(i, j++) = g.type == CellType::kPort ? 1.f : 0.f;
    f.at(i, j++) = 1.f;  // bias feature
  }
  return f;
}

int netlist_phys_feature_dim() { return 9; }

Mat netlist_phys_features(const Netlist& nl) {
  const int n = static_cast<int>(nl.size());
  // Netlist-stage activity report: propagated signal probability and toggle
  // rate with pin-cap-only loads (no placement needed).
  Parasitics zero_wire;
  zero_wire.nets.resize(nl.size());
  for (const Gate& g : nl.gates()) {
    for (GateId s : g.fanouts) {
      zero_wire.nets[static_cast<std::size_t>(g.id)].pin_cap +=
          cell_info(nl.gate(s).type).input_cap;
    }
  }
  const PowerReport activity = run_power(nl, zero_wire);

  Mat f(n, netlist_phys_feature_dim());
  for (const Gate& g : nl.gates()) {
    const CellInfo& info = cell_info(g.type);
    const int i = static_cast<int>(g.id);
    int j = 0;
    f.at(i, j++) = static_cast<float>(info.area) / 5.f;
    f.at(i, j++) = static_cast<float>(info.leakage) / 10.f;
    f.at(i, j++) = static_cast<float>(info.input_cap) / 3.f;
    f.at(i, j++) = static_cast<float>(info.drive_res) / 0.2f;
    f.at(i, j++) = static_cast<float>(info.intrinsic_delay) / 0.1f;
    f.at(i, j++) = static_cast<float>(g.fanins.size()) / 4.f;
    f.at(i, j++) = std::min(static_cast<float>(g.fanouts.size()) / 8.f, 2.f);
    f.at(i, j++) = static_cast<float>(activity.prob[static_cast<std::size_t>(i)]);
    f.at(i, j++) = static_cast<float>(activity.toggle[static_cast<std::size_t>(i)]);
  }
  return f;
}

int layout_feature_dim() { return 6; }

Mat layout_features(const LayoutGraph& lg) {
  const int n = static_cast<int>(lg.node_feats.size());
  Mat f(n, layout_feature_dim());
  for (int i = 0; i < n; ++i) {
    const auto& nf = lg.node_feats[static_cast<std::size_t>(i)];
    f.at(i, 0) = static_cast<float>(nf[0]) / 10.f;   // wire cap
    f.at(i, 1) = static_cast<float>(nf[1]) / 5.f;    // wire res
    f.at(i, 2) = static_cast<float>(nf[2]) / 20.f;   // load
    f.at(i, 3) = static_cast<float>(nf[3]) / 0.2f;   // stage delay
    f.at(i, 4) = static_cast<float>(nf[4]) / 100.f;  // x
    f.at(i, 5) = static_cast<float>(nf[5]) / 100.f;  // y
  }
  return f;
}

}  // namespace nettag
