#include "model/gcn.hpp"

namespace nettag {

Gcn::Gcn(const GcnConfig& config, Rng& rng) : config_(config) {
  int in = config.in_dim;
  for (int l = 0; l < config.num_layers; ++l) {
    const int out = l + 1 == config.num_layers ? config.out_dim : config.hidden;
    layers_.push_back(std::make_unique<Linear>(in, out, rng));
    in = out;
  }
}

Tensor Gcn::forward_nodes(const Tensor& feats, const Tensor& adj) const {
  Tensor x = feats;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    x = layers_[l]->forward(matmul(adj, x));
    if (l + 1 < layers_.size()) x = relu(x);
  }
  return x;
}

Tensor Gcn::forward_graph(const Tensor& feats, const Tensor& adj) const {
  return mean_rows(forward_nodes(feats, adj));
}

std::vector<Tensor> Gcn::params() const {
  std::vector<Tensor> out;
  for (const auto& l : layers_) {
    for (const Tensor& p : l->params()) out.push_back(p);
  }
  return out;
}

}  // namespace nettag
