// Blocking NDJSON client for the NetTAG-Serve daemon (docs/ARCHITECTURE.md
// §11.5): connect to a unix path or host:port, send one request line, read
// one response line, with real timeouts on connect and on each I/O call.
//
// Used by `nettag_serve --connect` (interactive / scripted clients), the
// soak bench's client processes, and the daemon tests. One Client is one
// connection and is NOT thread-safe — a multi-threaded load generator opens
// one Client per thread. Because the daemon answers in completion order,
// callers that pipeline multiple requests on one connection must match
// responses to requests by `id`, not by arrival order; request() itself is
// strictly one-in-one-out and needs no matching.
#pragma once

#include <cstdint>
#include <string>

#include "net/socket.hpp"
#include "util/cli.hpp"

namespace nettag::net {

class Client {
 public:
  struct Options {
    int connect_timeout_ms = 5000;
    /// Bound on each poll-wait while sending a request or awaiting a
    /// response line. A saturated daemon sheds instead of stalling, so a
    /// healthy round trip is far below this.
    int io_timeout_ms = 30000;
  };

  Client() = default;
  explicit Client(Options options) : options_(options) {}

  /// Connects to a parsed address, or to a spec string ("unix:/path" or
  /// "host:port"). Returns false with a descriptive *error (bad spec,
  /// refused, timeout). Reconnecting an open client closes the old
  /// connection first.
  bool connect(const cli::ListenAddress& address, std::string* error);
  bool connect(const std::string& spec, std::string* error);

  bool connected() const { return fd_.valid(); }
  void close();

  /// Sends `line` (newline appended if absent) and blocks for one response
  /// line, which is returned without its trailing newline. Returns false
  /// with *error on timeout, EOF (daemon drained away), or socket failure —
  /// the connection is closed then and must be re-connect()ed.
  bool request(const std::string& line, std::string* response,
               std::string* error);

  /// Half of request(): send only (used to pipeline several requests before
  /// reading; pair with read_line per response).
  bool send_line(const std::string& line, std::string* error);
  /// Half of request(): read the next response line.
  bool read_line(std::string* response, std::string* error);

 private:
  Options options_;
  UniqueFd fd_;
  std::string leftover_;  ///< bytes read past the last returned line
};

}  // namespace nettag::net
