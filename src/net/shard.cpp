#include "net/shard.hpp"

#include <chrono>
#include <string>

#include "serve/canonical.hpp"

namespace nettag::net {

namespace {

/// FNV-1a over raw bytes. Routes two things: the replica name (composed
/// into every netlist-op route so per-shard cache affinity holds *per
/// replica*) and — as a fallback — the raw text of netlist ops whose text
/// failed to parse (the shard reproduces the parse error; any stable shard
/// works, this just spreads bad traffic instead of pinning it to shard 0).
std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

std::size_t shard_cache_entries(std::size_t total, std::size_t shards) {
  const std::size_t per = total / (shards ? shards : 1);
  return per == 0 ? 1 : per;
}

}  // namespace

ShardPool::ShardPool(serve::Server& server, std::size_t shards,
                     std::size_t queue_depth, std::size_t total_cache_entries)
    : server_(server), queue_depth_(queue_depth ? queue_depth : 1) {
  if (shards == 0) shards = 1;
  const std::size_t per_cache = shard_cache_entries(total_cache_entries,
                                                    shards);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(per_cache));
    shards_.back()->depth_hist.assign(queue_depth_ + 1, 0);
  }
  for (auto& s : shards_) {
    s->worker = std::thread([this, shard = s.get()] { worker_loop(*shard); });
  }
}

ShardPool::~ShardPool() {
  stopping_.store(true, std::memory_order_release);
  paused_.store(false, std::memory_order_release);
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s->mu);
    s->cv.notify_all();
  }
  for (auto& s : shards_) {
    if (s->worker.joinable()) s->worker.join();
  }
  // Any tasks still queued at teardown get an internal-error response so the
  // transport can answer them (normal shutdown drains first; this is the
  // belt-and-braces path).
  for (auto& s : shards_) {
    for (Task& task : s->queue) {
      serve::Response response;
      response.id = task.request.id;
      response.op = task.request.op;
      response.error = serve::ErrorCode::kInternal;
      response.error_message = "shard pool destroyed with queued requests";
      if (task.done) task.done(std::move(response));
    }
    s->queue.clear();
  }
}

std::size_t ShardPool::route(const serve::Request& request) {
  const std::size_t n = shards_.size();
  if (n == 1) return 0;
  if (serve::is_netlist_op(request.op)) {
    // The replica name joins the route hash: cache keys are namespaced per
    // replica (serve/registry.hpp), so the same netlist addressed to two
    // replicas is two distinct cache entries — composing the name keeps
    // each entry pinned to one shard (affinity per replica), and spreads
    // one hot netlist served under many replica names across shards.
    const std::uint64_t name_hash =
        fnv1a(request.model.empty() ? std::string(serve::kDefaultModelName)
                                    : request.model);
    if (request.pre_parsed) {
      // Order-insensitive WL hash: renamed *and* reordered isomorphic
      // netlists route identically, which is what makes per-shard caches an
      // honest partition of the content-addressed cache.
      return static_cast<std::size_t>(
                 serve::structural_hash(*request.pre_parsed, 3, false) ^
                 name_hash) %
             n;
    }
    return static_cast<std::size_t>(fnv1a(request.netlist_text) ^ name_hash) %
           n;
  }
  return static_cast<std::size_t>(
             round_robin_.fetch_add(1, std::memory_order_relaxed)) %
         n;
}

void ShardPool::submit(serve::Request request, Done done) {
  Shard& shard = *shards_[route(request)];
  const bool sheddable = serve::is_netlist_op(request.op);
  {
    std::lock_guard<std::mutex> lk(shard.mu);
    ++shard.submitted;
    const std::size_t depth = shard.queue.size();
    shard.depth_hist[depth < queue_depth_ ? depth : queue_depth_] += 1;
    if (!(sheddable && depth >= queue_depth_)) {
      shard.queue.push_back(Task{std::move(request), std::move(done)});
      shard.cv.notify_one();
      return;
    }
    ++shard.shed;
  }
  // Shed path: answer inline with the structured taxonomy error. Counted as
  // an error request in the server metrics so operators see shed load in
  // the same requests_error / qps numbers as every other failure.
  serve::Response response;
  response.id = request.id;
  response.op = request.op;
  response.error = serve::ErrorCode::kTooBusy;
  response.error_message =
      "shard queue full (depth " + std::to_string(queue_depth_) +
      "); retry later";
  const double latency =
      request.t_start.time_since_epoch().count() == 0
          ? 0.0
          : std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          request.t_start)
                .count();
  server_.metrics().record_request(false, latency);
  if (done) done(std::move(response));
}

void ShardPool::worker_loop(Shard& shard) {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lk(shard.mu);
      shard.cv.wait(lk, [&] {
        return stopping_.load(std::memory_order_acquire) ||
               (!paused_.load(std::memory_order_acquire) &&
                !shard.queue.empty());
      });
      if (stopping_.load(std::memory_order_acquire)) return;
      task = std::move(shard.queue.front());
      shard.queue.pop_front();
      shard.in_flight = true;
    }
    serve::Response response = server_.process_on(task.request, &shard.cache);
    if (task.done) task.done(std::move(response));
    {
      std::lock_guard<std::mutex> lk(shard.mu);
      shard.in_flight = false;
      ++shard.processed;
    }
    // Taking drain_mu_ (even empty) before notifying pairs with the wait in
    // drain(): without it, a drain() thread could evaluate pending()==1,
    // have this completion slip in before it sleeps, and miss the wakeup.
    {
      std::lock_guard<std::mutex> lk(drain_mu_);
    }
    drain_cv_.notify_all();
  }
}

std::size_t ShardPool::pending() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s->mu);
    total += s->queue.size() + (s->in_flight ? 1 : 0);
  }
  return total;
}

void ShardPool::drain() {
  std::unique_lock<std::mutex> lk(drain_mu_);
  drain_cv_.wait(lk, [this] { return pending() == 0; });
}

void ShardPool::pause() {
  paused_.store(true, std::memory_order_release);
}

void ShardPool::resume() {
  paused_.store(false, std::memory_order_release);
  for (auto& s : shards_) {
    std::lock_guard<std::mutex> lk(s->mu);
    s->cv.notify_all();
  }
}

std::vector<ShardPool::ShardStats> ShardPool::stats() const {
  std::vector<ShardStats> out;
  out.reserve(shards_.size());
  for (const auto& s : shards_) {
    ShardStats stats;
    {
      std::lock_guard<std::mutex> lk(s->mu);
      stats.submitted = s->submitted;
      stats.processed = s->processed;
      stats.shed = s->shed;
      stats.queue_depth = s->queue.size() + (s->in_flight ? 1 : 0);
      stats.queue_depth_histogram = s->depth_hist;
    }
    stats.cache = s->cache.stats();
    out.push_back(std::move(stats));
  }
  return out;
}

void ShardPool::append_stats(serve::Json* j) const {
  serve::Json arr = serve::Json::array();
  for (const ShardStats& s : stats()) {
    serve::Json shard = serve::Json::object();
    shard.set("submitted", static_cast<double>(s.submitted));
    shard.set("processed", static_cast<double>(s.processed));
    shard.set("shed", static_cast<double>(s.shed));
    shard.set("queue_depth", static_cast<double>(s.queue_depth));
    serve::Json hist = serve::Json::array();
    for (const std::uint64_t count : s.queue_depth_histogram) {
      hist.push_back(static_cast<double>(count));
    }
    shard.set("queue_depth_histogram", std::move(hist));
    serve::Json cache = serve::Json::object();
    cache.set("entries", static_cast<double>(s.cache.entries));
    cache.set("capacity", static_cast<double>(s.cache.capacity));
    cache.set("hits", static_cast<double>(s.cache.hits));
    cache.set("misses", static_cast<double>(s.cache.misses));
    cache.set("evictions", static_cast<double>(s.cache.evictions));
    cache.set("collisions", static_cast<double>(s.cache.collisions));
    shard.set("result_cache", std::move(cache));
    arr.push_back(std::move(shard));
  }
  j->set("shards", std::move(arr));
}

}  // namespace nettag::net
