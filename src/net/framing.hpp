// NDJSON line framing for socket transports (docs/ARCHITECTURE.md §11.1).
//
// A LineBuffer accumulates raw bytes from non-blocking reads and yields
// complete newline-terminated lines, tolerating any read fragmentation (one
// request split across many reads, many requests arriving in one read). A
// single oversized line — a request whose length exceeds the configured
// bound before a newline appears — poisons the buffer: the framer cannot
// resynchronize inside an unbounded line, so the daemon answers with a
// structured error and closes that connection (bounded memory per client is
// part of the backpressure story).
#pragma once

#include <cstddef>
#include <string>

namespace nettag::net {

class LineBuffer {
 public:
  explicit LineBuffer(std::size_t max_line_bytes)
      : max_line_bytes_(max_line_bytes ? max_line_bytes : 1) {}

  /// Appends raw bytes. Returns false once the buffer is poisoned by an
  /// oversized line (bytes are dropped from then on).
  bool feed(const char* data, std::size_t size) {
    if (overflowed_) return false;
    buf_.append(data, size);
    // The bound is on the *whole* unterminated line, which always starts at
    // offset 0 (next_line erases everything up to the last extracted
    // newline) — measuring only the bytes past scan_from_ would let a line
    // streamed in small chunks, with next_line() draining between reads,
    // grow without ever tripping the check. The newline scan itself still
    // resumes at scan_from_, and only runs once the size bound is exceeded.
    if (buf_.size() > max_line_bytes_ &&
        buf_.find('\n', scan_from_) == std::string::npos) {
      overflowed_ = true;
      buf_.clear();
      return false;
    }
    return true;
  }

  /// Extracts the next complete line (newline stripped; a trailing '\r' is
  /// stripped too, so `nc`/telnet clients work). Returns false when no full
  /// line is buffered. An over-long *complete* line still comes out — the
  /// bound protects against lines that never end, and per-line size policy
  /// (reject vs serve) belongs to the protocol layer above.
  bool next_line(std::string* line) {
    const std::size_t nl = buf_.find('\n', scan_from_);
    if (nl == std::string::npos) {
      scan_from_ = buf_.size();
      return false;
    }
    std::size_t len = nl;
    if (len > 0 && buf_[len - 1] == '\r') --len;
    line->assign(buf_, 0, len);
    buf_.erase(0, nl + 1);
    scan_from_ = 0;
    return true;
  }

  /// True once an unterminated line exceeded the bound; the connection
  /// should be answered with an error and closed.
  bool overflowed() const { return overflowed_; }

  /// Bytes buffered but not yet returned (a partial trailing line).
  std::size_t pending_bytes() const { return buf_.size(); }

 private:
  const std::size_t max_line_bytes_;
  std::string buf_;
  /// Resume point for the newline scan: bytes before it were already
  /// scanned, so repeated feeds of a long line stay O(new bytes).
  std::size_t scan_from_ = 0;
  bool overflowed_ = false;
};

}  // namespace nettag::net
