#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace nettag::net {

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

std::string errno_string(const char* context) {
  return std::string(context) + ": " + std::strerror(errno);
}

bool set_nonblocking(int fd, std::string* error) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    if (error) *error = errno_string("fcntl(O_NONBLOCK)");
    return false;
  }
  return true;
}

namespace {

bool fill_unix_addr(const std::string& path, sockaddr_un* addr,
                    std::string* error) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr->sun_path)) {
    if (error) *error = "unix socket path too long: " + path;
    return false;
  }
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

/// Resolves a numeric or named IPv4 host. getaddrinfo handles both and
/// needs no network for numeric addresses and /etc/hosts names.
bool resolve_ipv4(const std::string& host, std::uint16_t port,
                  sockaddr_in* out, std::string* error) {
  addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &result);
  if (rc != 0 || result == nullptr) {
    if (error) {
      *error = "cannot resolve host '" + host + "': " + ::gai_strerror(rc);
    }
    return false;
  }
  std::memcpy(out, result->ai_addr, sizeof(sockaddr_in));
  out->sin_port = htons(port);
  ::freeaddrinfo(result);
  return true;
}

}  // namespace

UniqueFd listen_on(const cli::ListenAddress& address, int backlog,
                   std::string* error) {
  using Kind = cli::ListenAddress::Kind;
  if (address.kind == Kind::kUnix) {
    UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
      if (error) *error = errno_string("socket(AF_UNIX)");
      return {};
    }
    sockaddr_un addr;
    if (!fill_unix_addr(address.path, &addr, error)) return {};
    // The daemon owns its socket path: a stale file left by a killed
    // predecessor must not block startup, and an *active* predecessor is an
    // operator error this replaces (matching common daemon practice).
    ::unlink(address.path.c_str());
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      if (error) *error = errno_string("bind(unix)");
      return {};
    }
    if (::listen(fd.get(), backlog) < 0) {
      if (error) *error = errno_string("listen(unix)");
      return {};
    }
    if (!set_nonblocking(fd.get(), error)) return {};
    return fd;
  }
  if (address.kind == Kind::kTcp) {
    UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) {
      if (error) *error = errno_string("socket(AF_INET)");
      return {};
    }
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr;
    if (!resolve_ipv4(address.host, address.port, &addr, error)) return {};
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
        0) {
      if (error) *error = errno_string("bind(tcp)");
      return {};
    }
    if (::listen(fd.get(), backlog) < 0) {
      if (error) *error = errno_string("listen(tcp)");
      return {};
    }
    if (!set_nonblocking(fd.get(), error)) return {};
    return fd;
  }
  if (error) *error = "no listen address configured";
  return {};
}

std::uint16_t bound_tcp_port(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

UniqueFd accept_connection(int listen_fd, bool* would_block,
                           std::string* error) {
  *would_block = false;
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      *would_block = true;
    } else if (error) {
      *error = errno_string("accept");
    }
    return {};
  }
  UniqueFd conn(fd);
  std::string nb_error;
  if (!set_nonblocking(conn.get(), &nb_error)) {
    if (error) *error = nb_error;
    return {};
  }
  return conn;
}

UniqueFd connect_to(const cli::ListenAddress& address, int timeout_ms,
                    std::string* error) {
  using Kind = cli::ListenAddress::Kind;
  sockaddr_un unix_addr;
  sockaddr_in tcp_addr;
  sockaddr* addr = nullptr;
  socklen_t addr_len = 0;
  int family = AF_UNIX;
  if (address.kind == Kind::kUnix) {
    if (!fill_unix_addr(address.path, &unix_addr, error)) return {};
    addr = reinterpret_cast<sockaddr*>(&unix_addr);
    addr_len = sizeof(unix_addr);
  } else if (address.kind == Kind::kTcp) {
    if (!resolve_ipv4(address.host, address.port, &tcp_addr, error)) return {};
    addr = reinterpret_cast<sockaddr*>(&tcp_addr);
    addr_len = sizeof(tcp_addr);
    family = AF_INET;
  } else {
    if (error) *error = "no address to connect to";
    return {};
  }

  UniqueFd fd(::socket(family, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error) *error = errno_string("socket");
    return {};
  }
  // Non-blocking connect + poll gives the timeout; the socket is switched
  // back to blocking afterwards (the client wraps I/O in its own poll).
  if (!set_nonblocking(fd.get(), error)) return {};
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    if (::connect(fd.get(), addr, addr_len) == 0) break;
    if (errno == EAGAIN && family == AF_UNIX) {
      // Unix sockets report a *full listen backlog* as EAGAIN with the
      // connection not initiated at all (unlike TCP, which queues SYNs).
      // Treating it as in-progress would hand back an unconnected socket
      // whose first send fails — retry until the deadline instead; a
      // briefly flooded daemon accepts within a few poll ticks.
      if (std::chrono::steady_clock::now() >= deadline) {
        if (error) {
          *error = "connect timed out after " + std::to_string(timeout_ms) +
                   "ms (listen backlog full)";
        }
        return {};
      }
      ::poll(nullptr, 0, 5);
      continue;
    }
    if (errno != EINPROGRESS) {
      if (error) *error = errno_string("connect");
      return {};
    }
    pollfd pfd{fd.get(), POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) {
      if (error) {
        *error = ready == 0 ? "connect timed out after " +
                                  std::to_string(timeout_ms) + "ms"
                            : errno_string("poll(connect)");
      }
      return {};
    }
    int so_error = 0;
    socklen_t so_len = sizeof(so_error);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &so_error, &so_len) < 0 ||
        so_error != 0) {
      if (error) {
        *error = "connect failed: " +
                 std::string(std::strerror(so_error ? so_error : errno));
      }
      return {};
    }
    break;
  }
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK);
  return fd;
}

long send_some(int fd, const char* data, std::size_t size) {
  for (;;) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n >= 0) return static_cast<long>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return -1;
  }
}

long read_some(int fd, char* data, std::size_t size) {
  for (;;) {
    const ssize_t n = ::read(fd, data, size);
    if (n > 0) return static_cast<long>(n);
    if (n == 0) return -1;  // EOF
    if (errno == EINTR) return 0;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return -1;
  }
}

}  // namespace nettag::net
