// The NetTAG-Serve socket daemon (docs/ARCHITECTURE.md §11).
//
// One poll()-based transport thread owns all sockets:
//   * accepts unix-domain or TCP connections (cli::ListenAddress),
//   * frames NDJSON lines per connection (net/framing.hpp) with bounded
//     read/write buffering and an idle timeout,
//   * parses each request once, routes it to a worker shard by WL structural
//     hash (net/shard.hpp), and
//   * flushes completed responses back, in completion order — responses to
//     one connection may interleave across its in-flight requests, which is
//     why every request carries an `id` the response echoes.
//
// Shard workers hand finished responses back through a mutex-guarded
// completion queue plus a self-pipe byte, so the transport thread wakes from
// poll() immediately instead of on the next timeout tick.
//
// Shutdown: a SIGTERM/SIGINT (observed through the caller's stop flag) or a
// `shutdown` request triggers a graceful drain — close the listener (stop
// accepting), stop reading (no new requests), let the shards finish every
// queued and in-flight request, flush all write buffers, then emit one
// final-metrics line (the full `stats` JSON, transport and shard sections
// included) to stderr and return. Hot `reload` requests compose with all of
// this: they are just another op processed on a shard.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/framing.hpp"
#include "net/shard.hpp"
#include "net/socket.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"

namespace nettag::net {

struct DaemonConfig {
  cli::ListenAddress listen;
  std::size_t shards = 4;
  std::size_t queue_depth = 64;      ///< per-shard; beyond it, netlist ops shed
  std::size_t max_connections = 512; ///< accepted beyond this: closed at once
  std::size_t max_line_bytes = 8u << 20;  ///< unterminated-line bound
  /// Unwritten response bytes buffered per connection before the daemon
  /// stops reading from it and closes it once (if ever) the backlog
  /// flushes. Bounds the memory a client that submits requests but never
  /// reads responses can pin.
  std::size_t max_wbuf_bytes = 8u << 20;
  int idle_timeout_ms = 60000;       ///< quiet connections with no in-flight
  int poll_interval_ms = 200;        ///< poll() tick; bounds stop-flag latency
  int drain_timeout_ms = 10000;      ///< bound on the graceful-drain flush
  /// Total result-cache entries, split across shard partitions (pass the
  /// server's cache_entries so --cache-entries keeps meaning "total").
  std::size_t cache_entries = 256;
};

class Daemon {
 public:
  Daemon(serve::Server& server, DaemonConfig config);
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Binds the listener, builds the shard pool, and registers the
  /// transport/shard stats extension on the server. Returns false with
  /// *error on bind/config failure. (The model's text-cache partition count
  /// is set by the tool that owns the model, before the server wraps it;
  /// reload carries it across generations.)
  bool start(std::string* error);

  /// The bound TCP port (resolves `--listen host:0` ephemeral binds).
  /// 0 for unix-domain listeners.
  std::uint16_t tcp_port() const;

  /// Serves until `*stop` becomes true (SIGTERM/SIGINT flag) or a `shutdown`
  /// request is processed, then drains gracefully (see file comment) and
  /// returns 0. `stop` may be null (shutdown requests only).
  int run(const std::atomic<bool>* stop);

  /// Test hook: the shard pool (pause/resume, stats).
  ShardPool* shard_pool() { return pool_.get(); }

  /// Transport counters, as appended to `stats` under "transport".
  struct TransportStats {
    std::uint64_t accepts = 0;
    std::uint64_t rejected = 0;       ///< closed at accept: connection cap
    std::uint64_t connections = 0;    ///< current gauge
    std::uint64_t peak_connections = 0;
    std::uint64_t lines_in = 0;
    std::uint64_t responses_out = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
    std::uint64_t idle_closed = 0;
    std::uint64_t oversize_closed = 0;
    std::uint64_t slow_reader_closed = 0;  ///< wbuf exceeded max_wbuf_bytes
  };
  TransportStats transport_stats() const;

 private:
  struct Conn {
    UniqueFd fd;
    std::uint64_t id = 0;
    LineBuffer rbuf;
    std::string wbuf;         ///< rendered response bytes not yet written
    std::size_t woff = 0;     ///< wbuf bytes already written
    std::chrono::steady_clock::time_point last_activity;
    std::size_t in_flight = 0;  ///< submitted, response not yet in wbuf
    bool closing = false;       ///< flush wbuf, then close

    Conn(UniqueFd fd_in, std::uint64_t id_in, std::size_t max_line_bytes)
        : fd(std::move(fd_in)), id(id_in), rbuf(max_line_bytes) {}
  };

  /// One poll() round: deliver completions, accept (when `accepting`), read
  /// + route (when `reading`), flush writes, reap idle/dead connections.
  void poll_once(int timeout_ms, bool accepting, bool reading);
  void accept_new_connections();
  /// Reads everything available on `conn`; frames and submits lines.
  /// Returns false when the connection died (caller removes it).
  bool service_reads(Conn& conn);
  void submit_line(Conn& conn, const std::string& line);
  /// Writes as much buffered output as the socket takes. Returns false when
  /// the connection died.
  bool flush_writes(Conn& conn);
  void deliver_completions();
  void close_connection(std::uint64_t id);
  void drain();
  void wake_pipe_write();

  serve::Server& server_;
  DaemonConfig config_;
  std::unique_ptr<ShardPool> pool_;
  UniqueFd listener_;
  UniqueFd wake_read_, wake_write_;  ///< self-pipe: shard -> poll wakeup
  std::uint16_t tcp_port_ = 0;
  std::uint64_t next_conn_id_ = 1;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;

  /// Completed (conn id, rendered line) pairs from shard workers.
  std::mutex completions_mu_;
  std::deque<std::pair<std::uint64_t, std::string>> completions_;

  // Counters are atomics: the poll thread writes, `stats` requests read from
  // shard worker threads.
  std::atomic<std::uint64_t> accepts_{0}, rejected_{0}, connections_{0},
      peak_connections_{0}, lines_in_{0}, responses_out_{0}, bytes_in_{0},
      bytes_out_{0}, idle_closed_{0}, oversize_closed_{0},
      slow_reader_closed_{0};
};

}  // namespace nettag::net
