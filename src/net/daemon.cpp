#include "net/daemon.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <utility>

#include "netlist/io.hpp"
#include "util/timer.hpp"

namespace nettag::net {

Daemon::Daemon(serve::Server& server, DaemonConfig config)
    : server_(server), config_(std::move(config)) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.queue_depth == 0) config_.queue_depth = 1;
}

Daemon::~Daemon() {
  // The stats extension captures `this`; it must not outlive the daemon.
  server_.set_stats_extension(nullptr);
  // Tear the shard pool down while the completion queue, its mutex, and the
  // wake pipe are still alive: pool teardown joins workers (an in-flight
  // task's done callback still fires) and answers leftover queued tasks, and
  // those callbacks lock completions_mu_, push into completions_, and write
  // wake_write_. Default member destruction runs in reverse declaration
  // order, which would destroy all three before pool_.
  pool_.reset();
  if (listener_.valid() &&
      config_.listen.kind == cli::ListenAddress::Kind::kUnix) {
    ::unlink(config_.listen.path.c_str());
  }
}

bool Daemon::start(std::string* error) {
  // Backlog sized for connection storms (the soak bench opens ~200 at
  // once); the kernel clamps to net.core.somaxconn.
  listener_ = listen_on(config_.listen, /*backlog=*/1024, error);
  if (!listener_.valid()) return false;
  if (config_.listen.kind == cli::ListenAddress::Kind::kTcp) {
    tcp_port_ = bound_tcp_port(listener_.get());
  }
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    if (error) *error = errno_string("pipe");
    return false;
  }
  wake_read_.reset(pipe_fds[0]);
  wake_write_.reset(pipe_fds[1]);
  std::string nb_error;
  if (!set_nonblocking(wake_read_.get(), &nb_error) ||
      !set_nonblocking(wake_write_.get(), &nb_error)) {
    if (error) *error = nb_error;
    return false;
  }
  pool_ = std::make_unique<ShardPool>(server_, config_.shards,
                                      config_.queue_depth,
                                      config_.cache_entries);
  server_.set_stats_extension([this](serve::Json* j) {
    const TransportStats t = transport_stats();
    serve::Json transport = serve::Json::object();
    transport.set("accepts", static_cast<double>(t.accepts));
    transport.set("rejected", static_cast<double>(t.rejected));
    transport.set("connections", static_cast<double>(t.connections));
    transport.set("peak_connections",
                  static_cast<double>(t.peak_connections));
    transport.set("lines_in", static_cast<double>(t.lines_in));
    transport.set("responses_out", static_cast<double>(t.responses_out));
    transport.set("bytes_in", static_cast<double>(t.bytes_in));
    transport.set("bytes_out", static_cast<double>(t.bytes_out));
    transport.set("idle_closed", static_cast<double>(t.idle_closed));
    transport.set("oversize_closed",
                  static_cast<double>(t.oversize_closed));
    transport.set("slow_reader_closed",
                  static_cast<double>(t.slow_reader_closed));
    j->set("transport", std::move(transport));
    pool_->append_stats(j);
  });
  return true;
}

std::uint16_t Daemon::tcp_port() const { return tcp_port_; }

int Daemon::run(const std::atomic<bool>* stop) {
  while (!(stop && stop->load(std::memory_order_relaxed)) &&
         !server_.shutdown_requested()) {
    poll_once(config_.poll_interval_ms, /*accepting=*/true, /*reading=*/true);
  }
  drain();
  return 0;
}

void Daemon::wake_pipe_write() {
  const char byte = 1;
  // A full pipe still wakes the poll loop (a byte is already pending), so
  // EAGAIN is success here.
  (void)!::write(wake_write_.get(), &byte, 1);
}

void Daemon::poll_once(int timeout_ms, bool accepting, bool reading) {
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> conn_ids;
  fds.push_back(pollfd{wake_read_.get(), POLLIN, 0});
  const bool has_listener = accepting && listener_.valid();
  if (has_listener) fds.push_back(pollfd{listener_.get(), POLLIN, 0});
  const std::size_t base = fds.size();
  conn_ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) {
    short events = 0;
    if (reading && !conn->closing) events |= POLLIN;
    if (conn->woff < conn->wbuf.size()) events |= POLLOUT;
    fds.push_back(pollfd{conn->fd.get(), events, 0});
    conn_ids.push_back(id);
  }
  const int ready = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                           timeout_ms);
  if (ready < 0) return;  // EINTR: the run loop re-checks its stop flag

  if (fds[0].revents & POLLIN) {
    char buf[256];
    while (::read(wake_read_.get(), buf, sizeof(buf)) > 0) {
    }
  }
  deliver_completions();
  if (has_listener && (fds[1].revents & (POLLIN | POLLERR))) {
    accept_new_connections();
  }

  const auto now = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> dead;
  for (std::size_t i = 0; i < conn_ids.size(); ++i) {
    auto it = conns_.find(conn_ids[i]);
    if (it == conns_.end()) continue;
    Conn& conn = *it->second;
    const short revents = fds[base + i].revents;
    if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
      // POLLHUP with readable data still delivers the data first on Linux,
      // but a half-closed client cannot receive responses anyway — drop it.
      dead.push_back(conn.id);
      continue;
    }
    if ((revents & POLLIN) && !service_reads(conn)) {
      dead.push_back(conn.id);
      continue;
    }
    if ((revents & POLLOUT) && !flush_writes(conn)) {
      dead.push_back(conn.id);
      continue;
    }
    const auto idle =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now - conn.last_activity)
            .count();
    if (!conn.closing && conn.in_flight == 0 &&
        conn.woff >= conn.wbuf.size() && conn.rbuf.pending_bytes() == 0 &&
        idle > config_.idle_timeout_ms) {
      idle_closed_.fetch_add(1, std::memory_order_relaxed);
      dead.push_back(conn.id);
    } else if (conn.closing && conn.in_flight == 0 &&
               idle > config_.idle_timeout_ms) {
      // A closing connection normally dies when its wbuf flushes; a peer
      // that never reads would keep it (and its buffered responses) pinned
      // forever, so the idle timeout drops it with its backlog unflushed.
      dead.push_back(conn.id);
    }
  }
  // Shed responses complete inline during service_reads and completions may
  // have landed while reading — push them into write buffers this tick, so
  // a fast client sees its response without waiting one poll interval.
  deliver_completions();
  for (const std::uint64_t id : dead) close_connection(id);
}

void Daemon::accept_new_connections() {
  for (;;) {
    bool would_block = false;
    std::string error;
    UniqueFd fd = accept_connection(listener_.get(), &would_block, &error);
    if (!fd.valid()) {
      if (!would_block && !error.empty()) {
        std::fprintf(stderr, "nettag_serve: %s\n", error.c_str());
      }
      return;
    }
    if (conns_.size() >= config_.max_connections) {
      // Over the cap the daemon closes immediately rather than queueing the
      // connection — request-level pushback is too_busy, connection-level
      // pushback is a refused session the client retries.
      rejected_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    accepts_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Conn>(std::move(fd), id,
                                       config_.max_line_bytes);
    conn->last_activity = std::chrono::steady_clock::now();
    conns_.emplace(id, std::move(conn));
    const std::uint64_t gauge =
        connections_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::uint64_t peak = peak_connections_.load(std::memory_order_relaxed);
    while (gauge > peak &&
           !peak_connections_.compare_exchange_weak(
               peak, gauge, std::memory_order_relaxed)) {
    }
  }
}

bool Daemon::service_reads(Conn& conn) {
  char buf[64 * 1024];
  for (;;) {
    const long n = read_some(conn.fd.get(), buf, sizeof(buf));
    if (n < 0) return false;  // EOF or dead peer
    if (n == 0) break;        // drained the socket for now
    bytes_in_.fetch_add(static_cast<std::uint64_t>(n),
                        std::memory_order_relaxed);
    conn.last_activity = std::chrono::steady_clock::now();
    if (!conn.rbuf.feed(buf, static_cast<std::size_t>(n))) {
      // Unterminated oversized line: answer with the structured taxonomy
      // (no request id is recoverable from a poisoned buffer) and close
      // once the error is flushed.
      oversize_closed_.fetch_add(1, std::memory_order_relaxed);
      serve::Response response;
      response.error = serve::ErrorCode::kBadRequest;
      response.error_message =
          "request line exceeds " +
          std::to_string(config_.max_line_bytes) +
          " bytes without a newline; closing connection";
      conn.wbuf += serve::render_response(response);
      conn.wbuf += '\n';
      conn.closing = true;
      return flush_writes(conn);
    }
    std::string line;
    while (conn.rbuf.next_line(&line)) {
      lines_in_.fetch_add(1, std::memory_order_relaxed);
      submit_line(conn, line);
    }
  }
  return true;
}

void Daemon::submit_line(Conn& conn, const std::string& line) {
  if (line.empty()) return;  // blank lines are keep-alive no-ops
  serve::Request request = serve::parse_request(line);
  request.t_start = std::chrono::steady_clock::now();
  if (serve::is_netlist_op(request.op) &&
      request.parse_error == serve::ErrorCode::kNone &&
      !request.netlist_text.empty()) {
    // Parse once on the transport thread: the route hash needs the
    // structure, and the shard reuses the parse via Request::pre_parsed.
    // Parse *failures* stay un-annotated — the shard re-parses and produces
    // the structured parse error (bad text is cheap to parse twice).
    try {
      Timer t;
      auto parsed =
          std::make_shared<Netlist>(netlist_from_string(request.netlist_text));
      server_.metrics().record_stage(serve::Stage::kParse, t.seconds());
      request.pre_parsed = std::move(parsed);
    } catch (const std::exception&) {
    }
  }
  ++conn.in_flight;
  const std::uint64_t conn_id = conn.id;
  pool_->submit(std::move(request), [this, conn_id](serve::Response r) {
    std::string rendered = serve::render_response(r);
    {
      std::lock_guard<std::mutex> lk(completions_mu_);
      completions_.emplace_back(conn_id, std::move(rendered));
    }
    wake_pipe_write();
  });
}

void Daemon::deliver_completions() {
  std::deque<std::pair<std::uint64_t, std::string>> batch;
  {
    std::lock_guard<std::mutex> lk(completions_mu_);
    batch.swap(completions_);
  }
  for (auto& [conn_id, rendered] : batch) {
    auto it = conns_.find(conn_id);
    if (it == conns_.end()) continue;  // client left before its answer
    Conn& conn = *it->second;
    if (conn.in_flight > 0) --conn.in_flight;
    conn.wbuf += rendered;
    conn.wbuf += '\n';
    conn.last_activity = std::chrono::steady_clock::now();
    responses_out_.fetch_add(1, std::memory_order_relaxed);
    if (!conn.closing &&
        conn.wbuf.size() - conn.woff > config_.max_wbuf_bytes) {
      // The client keeps submitting but is not reading its responses: stop
      // reading from it (closing connections get no POLLIN) so the backlog
      // stays bounded, flush what we can, and close once it drains. Growth
      // past the bound is limited to responses already in flight.
      slow_reader_closed_.fetch_add(1, std::memory_order_relaxed);
      conn.closing = true;
    }
    if (!flush_writes(conn)) close_connection(conn_id);
  }
}

bool Daemon::flush_writes(Conn& conn) {
  while (conn.woff < conn.wbuf.size()) {
    const long n = send_some(conn.fd.get(), conn.wbuf.data() + conn.woff,
                             conn.wbuf.size() - conn.woff);
    if (n < 0) return false;  // peer gone
    if (n == 0) return true;  // kernel buffer full; POLLOUT resumes us
    conn.woff += static_cast<std::size_t>(n);
    bytes_out_.fetch_add(static_cast<std::uint64_t>(n),
                         std::memory_order_relaxed);
  }
  conn.wbuf.clear();
  conn.woff = 0;
  return !conn.closing;  // fully flushed: a closing connection ends now
}

void Daemon::close_connection(std::uint64_t id) {
  if (conns_.erase(id) > 0) {
    connections_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void Daemon::drain() {
  listener_.reset();
  if (config_.listen.kind == cli::ListenAddress::Kind::kUnix) {
    ::unlink(config_.listen.path.c_str());
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config_.drain_timeout_ms);
  for (;;) {
    bool waiting = pool_->pending() > 0;
    {
      std::lock_guard<std::mutex> lk(completions_mu_);
      waiting = waiting || !completions_.empty();
    }
    if (!waiting) {
      waiting = std::any_of(conns_.begin(), conns_.end(), [](const auto& kv) {
        return kv.second->woff < kv.second->wbuf.size();
      });
    }
    if (!waiting) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr,
                   "nettag_serve: drain timed out after %dms; "
                   "dropping unflushed responses\n",
                   config_.drain_timeout_ms);
      break;
    }
    // No accepting, no reading: just pump completions and write flushes.
    poll_once(50, /*accepting=*/false, /*reading=*/false);
  }
  conns_.clear();
  connections_.store(0, std::memory_order_relaxed);
  // The final-metrics line: the complete `stats` object (requests, stages,
  // caches, transport, shards) as of the drained state.
  std::fprintf(stderr, "nettag_serve: drained; final metrics: %s\n",
               server_.stats_json().c_str());
}

Daemon::TransportStats Daemon::transport_stats() const {
  TransportStats t;
  t.accepts = accepts_.load(std::memory_order_relaxed);
  t.rejected = rejected_.load(std::memory_order_relaxed);
  t.connections = connections_.load(std::memory_order_relaxed);
  t.peak_connections = peak_connections_.load(std::memory_order_relaxed);
  t.lines_in = lines_in_.load(std::memory_order_relaxed);
  t.responses_out = responses_out_.load(std::memory_order_relaxed);
  t.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  t.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  t.idle_closed = idle_closed_.load(std::memory_order_relaxed);
  t.oversize_closed = oversize_closed_.load(std::memory_order_relaxed);
  t.slow_reader_closed = slow_reader_closed_.load(std::memory_order_relaxed);
  return t;
}

}  // namespace nettag::net
