// Thin POSIX socket layer for the NetTAG-Serve daemon (docs/ARCHITECTURE.md
// §11): RAII file descriptors, unix-domain and TCP listeners, and a blocking
// connect with a real timeout. Everything returns errors as strings — the
// daemon and client layers decide whether an error is fatal (bad --listen
// value) or per-connection (a peer reset).
//
// All sockets returned by the listen/accept helpers are non-blocking; the
// poll loop owns all waiting. Writes use send(MSG_NOSIGNAL) so a client that
// disconnects mid-response surfaces as EPIPE instead of killing the daemon
// with SIGPIPE.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "util/cli.hpp"

namespace nettag::net {

/// RAII owner of one file descriptor (socket, pipe end). Move-only.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset(other.release());
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  ~UniqueFd() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// "<context>: <strerror(errno)>" at the moment of the failure.
std::string errno_string(const char* context);

/// Makes `fd` non-blocking. Returns false (and fills *error) on fcntl
/// failure — which in practice means the fd is already dead.
bool set_nonblocking(int fd, std::string* error);

/// Binds + listens on `address` (unix path or host:port). A unix path that
/// already exists is unlinked first — the daemon owns its socket path, and a
/// stale file from a killed predecessor must not block startup. TCP
/// listeners set SO_REUSEADDR and support port 0 (ephemeral; read the real
/// port back with bound_tcp_port). The returned fd is non-blocking.
UniqueFd listen_on(const cli::ListenAddress& address, int backlog,
                   std::string* error);

/// The locally bound TCP port of a listening socket (resolves port 0).
/// Returns 0 on failure.
std::uint16_t bound_tcp_port(int fd);

/// Accepts one pending connection; the result is non-blocking. Returns an
/// invalid fd with *would_block=true when the queue is empty, and an invalid
/// fd with an error string on real accept failures.
UniqueFd accept_connection(int listen_fd, bool* would_block,
                           std::string* error);

/// Connects to `address`, waiting at most `timeout_ms` for the connection to
/// be established. The returned socket is left *blocking* — the client
/// helper uses poll() around its reads/writes for per-call timeouts.
UniqueFd connect_to(const cli::ListenAddress& address, int timeout_ms,
                    std::string* error);

/// send(fd, ..., MSG_NOSIGNAL) wrapper: returns bytes written, 0 on
/// would-block, -1 on a dead peer (EPIPE/ECONNRESET/...).
long send_some(int fd, const char* data, std::size_t size);

/// read() wrapper: returns bytes read, 0 on would-block or EINTR, -1 on EOF
/// or a dead peer.
long read_some(int fd, char* data, std::size_t size);

}  // namespace nettag::net
