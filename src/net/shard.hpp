// Sharded request execution for the NetTAG-Serve daemon
// (docs/ARCHITECTURE.md §11.3).
//
// N worker shards, each owning:
//   * one bounded FIFO queue — the backpressure point. A netlist op arriving
//     at a full queue is *shed*: it gets an immediate `too_busy` error
//     response and never queues, so the daemon's memory and latency stay
//     bounded no matter how hard clients push. Control ops (ping, stats,
//     shutdown, reload) are never shed — an operator must always be able to
//     observe and drain a saturated daemon.
//   * one ResultCache partition. Requests route by the *order-insensitive*
//     WL structural hash of their netlist, so a renamed/reordered isomorphic
//     resubmission lands on the same shard and hits that shard's cache —
//     cache affinity without any cross-shard coordination. (Per-op cache
//     keys still disambiguate within the shard, exactly as in the
//     single-cache server.)
//
// Shard workers call Server::process_on synchronously: inter-request
// parallelism comes from running S shards concurrently, not from batching
// one request across the pool. The transport thread (net/daemon) parses each
// netlist once for routing and passes the parse along via
// Request::pre_parsed, so admission work is not repeated.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

namespace nettag::net {

class ShardPool {
 public:
  /// Completion callback; runs on the shard worker thread (or inline on the
  /// submitting thread for shed requests). Must be cheap and thread-safe —
  /// the daemon's callback pushes onto a completion queue and wakes poll().
  using Done = std::function<void(serve::Response)>;

  /// `total_cache_entries` is split evenly across the shards' result-cache
  /// partitions (each at least 1 entry).
  ShardPool(serve::Server& server, std::size_t shards,
            std::size_t queue_depth, std::size_t total_cache_entries);
  ~ShardPool();

  ShardPool(const ShardPool&) = delete;
  ShardPool& operator=(const ShardPool&) = delete;

  /// The shard `request` would run on. Netlist ops with a parse route by the
  /// order-insensitive WL hash (isomorphism-stable); netlist ops whose text
  /// failed to parse route by a hash of the raw text (the shard will produce
  /// the parse error); control ops round-robin.
  std::size_t route(const serve::Request& request);

  /// Enqueues `request` on its route shard, or sheds it with `too_busy` when
  /// that shard's queue is full (netlist ops only; control ops always
  /// queue). `done` is invoked exactly once either way.
  void submit(serve::Request request, Done done);

  /// Queued + in-flight requests across all shards.
  std::size_t pending() const;

  /// Blocks until every queued and in-flight request has completed. The
  /// caller must have stopped submitting first (the daemon closes its
  /// listeners and stops reading before draining).
  void drain();

  // --- test hooks ---------------------------------------------------------
  /// Halts all shard workers before their next dequeue, so tests can fill a
  /// queue deterministically and observe the shed path. resume() restarts.
  void pause();
  void resume();

  struct ShardStats {
    std::uint64_t submitted = 0;
    std::uint64_t processed = 0;
    std::uint64_t shed = 0;
    std::size_t queue_depth = 0;  ///< current
    /// queue_depth_histogram[d] = number of submissions that found d
    /// requests already queued (d ranges 0..queue_depth; a submission that
    /// found the queue full was shed and counts in the last bucket).
    std::vector<std::uint64_t> queue_depth_histogram;
    serve::ResultCache::Stats cache;
  };
  std::vector<ShardStats> stats() const;

  std::size_t shard_count() const { return shards_.size(); }
  std::size_t queue_depth() const { return queue_depth_; }

  /// Appends {"shards":[...]} per-shard counters to a stats JSON object —
  /// wired into the server via Server::set_stats_extension.
  void append_stats(serve::Json* j) const;

 private:
  struct Task {
    serve::Request request;
    Done done;
  };

  struct Shard {
    explicit Shard(std::size_t cache_entries) : cache(cache_entries) {}
    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<Task> queue;
    bool in_flight = false;  ///< worker is processing a dequeued task
    std::uint64_t submitted = 0, processed = 0, shed = 0;
    std::vector<std::uint64_t> depth_hist;  ///< sized queue_depth + 1
    serve::ResultCache cache;
    std::thread worker;
  };

  void worker_loop(Shard& shard);

  serve::Server& server_;
  const std::size_t queue_depth_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> round_robin_{0};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> paused_{false};
  /// drain() waiters; notified whenever a shard empties.
  mutable std::mutex drain_mu_;
  std::condition_variable drain_cv_;
};

}  // namespace nettag::net
