#include "net/client.hpp"

#include <poll.h>

#include <cerrno>
#include <cstring>

namespace nettag::net {

namespace {

/// Waits for `events` on `fd` within the timeout. Returns false (with a
/// reason) on timeout or poll failure.
bool wait_for(int fd, short events, int timeout_ms, std::string* error) {
  pollfd pfd{fd, events, 0};
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready > 0) return true;
    if (ready == 0) {
      if (error) {
        *error = std::string(events & POLLIN ? "read" : "write") +
                 " timed out after " + std::to_string(timeout_ms) + "ms";
      }
      return false;
    }
    if (errno == EINTR) continue;
    if (error) *error = errno_string("poll");
    return false;
  }
}

}  // namespace

bool Client::connect(const cli::ListenAddress& address, std::string* error) {
  close();
  fd_ = connect_to(address, options_.connect_timeout_ms, error);
  return fd_.valid();
}

bool Client::connect(const std::string& spec, std::string* error) {
  cli::ListenAddress address;
  if (!cli::parse_listen_address(spec.c_str(), &address, error)) return false;
  return connect(address, error);
}

void Client::close() {
  fd_.reset();
  leftover_.clear();
}

bool Client::send_line(const std::string& line, std::string* error) {
  if (!fd_.valid()) {
    if (error) *error = "not connected";
    return false;
  }
  std::string framed = line;
  if (framed.empty() || framed.back() != '\n') framed += '\n';
  std::size_t off = 0;
  while (off < framed.size()) {
    const long n = send_some(fd_.get(), framed.data() + off,
                             framed.size() - off);
    if (n < 0) {
      if (error) *error = "connection closed by server while sending";
      close();
      return false;
    }
    if (n == 0) {
      // Blocking socket, but a full kernel buffer against a stalled daemon
      // still needs the timeout: wait for writability, bounded.
      if (!wait_for(fd_.get(), POLLOUT, options_.io_timeout_ms, error)) {
        close();
        return false;
      }
      continue;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool Client::read_line(std::string* response, std::string* error) {
  if (!fd_.valid()) {
    if (error) *error = "not connected";
    return false;
  }
  for (;;) {
    const std::size_t nl = leftover_.find('\n');
    if (nl != std::string::npos) {
      std::size_t len = nl;
      if (len > 0 && leftover_[len - 1] == '\r') --len;
      response->assign(leftover_, 0, len);
      leftover_.erase(0, nl + 1);
      return true;
    }
    if (!wait_for(fd_.get(), POLLIN, options_.io_timeout_ms, error)) {
      close();
      return false;
    }
    char buf[64 * 1024];
    const long n = read_some(fd_.get(), buf, sizeof(buf));
    if (n < 0) {
      if (error) {
        *error = "connection closed by server (drained or crashed) before a "
                 "response line arrived";
      }
      close();
      return false;
    }
    if (n > 0) leftover_.append(buf, static_cast<std::size_t>(n));
    // n == 0 (spurious wakeup / EINTR): poll again.
  }
}

bool Client::request(const std::string& line, std::string* response,
                     std::string* error) {
  if (!send_line(line, error)) return false;
  return read_line(response, error);
}

}  // namespace nettag::net
