#include "expr/bdd.hpp"

#include <cassert>
#include <climits>
#include <cmath>
#include <functional>
#include <stdexcept>

namespace nettag {

namespace {

constexpr int kTerminalVar = INT_MAX;

/// Exact packing of (a, b, c) into 64 bits: 20 + 22 + 22. Collision-free as
/// long as variable count < 2^20 and node count < 2^22 (assert-guarded), so
/// the unique table keeps BDDs canonical.
std::uint64_t key3(std::uint32_t a, std::uint32_t b, std::uint32_t c) {
  assert(a < (1u << 20) || a == static_cast<std::uint32_t>(kTerminalVar));
  assert(b < (1u << 22) && c < (1u << 22));
  const std::uint64_t av = a == static_cast<std::uint32_t>(kTerminalVar)
                               ? ((1u << 20) - 1)
                               : a;
  return (av << 44) | (static_cast<std::uint64_t>(b) << 22) | c;
}

}  // namespace

BddManager::BddManager() {
  nodes_.push_back({kTerminalVar, kFalse, kFalse});  // 0: false
  nodes_.push_back({kTerminalVar, kTrue, kTrue});    // 1: true
}

int BddManager::var_index(const std::string& name) {
  auto it = var_index_.find(name);
  if (it != var_index_.end()) return it->second;
  const int index = static_cast<int>(var_names_.size());
  var_names_.push_back(name);
  var_index_.emplace(name, index);
  return index;
}

BddRef BddManager::make_node(int var, BddRef lo, BddRef hi) {
  if (lo == hi) return lo;  // redundant test elimination
  const std::uint64_t key = key3(static_cast<std::uint32_t>(var), lo, hi);
  auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  const BddRef ref = static_cast<BddRef>(nodes_.size());
  nodes_.push_back({var, lo, hi});
  unique_[key] = ref;
  return ref;
}

BddRef BddManager::var(const std::string& name) {
  const int index = var_index(name);
  return make_node(index, kFalse, kTrue);
}

BddRef BddManager::ite(BddRef f, BddRef g, BddRef h) {
  // Terminal cases.
  if (f == kTrue) return g;
  if (f == kFalse) return h;
  if (g == h) return g;
  if (g == kTrue && h == kFalse) return f;

  const std::uint64_t key = key3(f, g, h);
  auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;

  // Top variable among the three.
  int top = kTerminalVar;
  for (BddRef r : {f, g, h}) {
    top = std::min(top, nodes_[r].var);
  }
  auto cofactor = [&](BddRef r, bool hi) {
    const Node& n = nodes_[r];
    if (n.var != top) return r;
    return hi ? n.hi : n.lo;
  };
  const BddRef hi = ite(cofactor(f, true), cofactor(g, true), cofactor(h, true));
  const BddRef lo =
      ite(cofactor(f, false), cofactor(g, false), cofactor(h, false));
  const BddRef result = make_node(top, lo, hi);
  ite_cache_[key] = result;
  return result;
}

BddRef BddManager::bdd_not(BddRef a) { return ite(a, kFalse, kTrue); }
BddRef BddManager::bdd_and(BddRef a, BddRef b) { return ite(a, b, kFalse); }
BddRef BddManager::bdd_or(BddRef a, BddRef b) { return ite(a, kTrue, b); }
BddRef BddManager::bdd_xor(BddRef a, BddRef b) {
  return ite(a, bdd_not(b), b);
}

BddRef BddManager::build(const ExprPtr& expr) {
  switch (expr->kind()) {
    case ExprKind::kConst0:
      return kFalse;
    case ExprKind::kConst1:
      return kTrue;
    case ExprKind::kVar:
      return var(expr->var_name());
    case ExprKind::kNot:
      return bdd_not(build(expr->children()[0]));
    case ExprKind::kAnd: {
      BddRef acc = kTrue;
      for (const auto& c : expr->children()) acc = bdd_and(acc, build(c));
      return acc;
    }
    case ExprKind::kOr: {
      BddRef acc = kFalse;
      for (const auto& c : expr->children()) acc = bdd_or(acc, build(c));
      return acc;
    }
    case ExprKind::kXor: {
      BddRef acc = kFalse;
      for (const auto& c : expr->children()) acc = bdd_xor(acc, build(c));
      return acc;
    }
  }
  throw std::invalid_argument("BddManager::build: bad expression kind");
}

bool BddManager::eval(BddRef f, const Assignment& assignment) const {
  while (f != kFalse && f != kTrue) {
    const Node& n = nodes_[f];
    auto it = assignment.find(var_names_[static_cast<std::size_t>(n.var)]);
    const bool v = it != assignment.end() && it->second;
    f = v ? n.hi : n.lo;
  }
  return f == kTrue;
}

double BddManager::sat_count(BddRef f, int num_vars) const {
  // Recursive count with per-call memo; each path skipping k variable
  // levels contributes 2^k assignments.
  std::unordered_map<BddRef, double> memo;
  // counts minterms below variable level `from` assuming f's top var >= from.
  std::function<double(BddRef)> count = [&](BddRef r) -> double {
    if (r == kFalse) return 0.0;
    if (r == kTrue) return 1.0;
    auto it = memo.find(r);
    if (it != memo.end()) return it->second;
    const Node& n = nodes_[r];
    auto level_of = [&](BddRef x) {
      return nodes_[x].var == kTerminalVar ? num_vars : nodes_[x].var;
    };
    const double lo = count(n.lo) *
                      std::pow(2.0, level_of(n.lo) - n.var - 1);
    const double hi = count(n.hi) *
                      std::pow(2.0, level_of(n.hi) - n.var - 1);
    const double total = lo + hi;
    memo[r] = total;
    return total;
  };
  const int top_level = nodes_[f].var == kTerminalVar ? num_vars : nodes_[f].var;
  return count(f) * std::pow(2.0, top_level);
}

bool BddManager::pick_satisfying(BddRef f, Assignment* out) const {
  if (f == kFalse) return false;
  out->clear();
  while (f != kTrue) {
    const Node& n = nodes_[f];
    const std::string& name = var_names_[static_cast<std::size_t>(n.var)];
    if (n.hi != kFalse) {
      (*out)[name] = true;
      f = n.hi;
    } else {
      (*out)[name] = false;
      f = n.lo;
    }
  }
  return true;
}

bool bdd_equal(const ExprPtr& a, const ExprPtr& b) {
  BddManager mgr;
  // Canonical variable order: sorted combined support (first-touch would
  // give different orders for a and b otherwise).
  for (const std::string& v : support(Expr::lor(a, b))) mgr.var_index(v);
  return mgr.build(a) == mgr.build(b);
}

bool bdd_is_tautology(const ExprPtr& e) {
  BddManager mgr;
  return mgr.build(e) == BddManager::kTrue;
}

bool bdd_is_contradiction(const ExprPtr& e) {
  BddManager mgr;
  return mgr.build(e) == BddManager::kFalse;
}

}  // namespace nettag
