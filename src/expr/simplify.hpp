// Local-rule Boolean expression simplification (the PySMT `simplify`
// analog): constant folding, identity/annihilator elimination, associative
// flattening, duplicate-child reduction, absorption, and double-negation
// removal. Semantics-preserving and size-non-increasing; useful for
// compacting k-hop cone expressions and as a normalization step before
// structural comparison.
#pragma once

#include "expr/expr.hpp"

namespace nettag {

/// Returns a simplified expression computing the same function.
/// Guarantees: semantically equal to the input, and tree size() is never
/// larger than the input's.
ExprPtr simplify(const ExprPtr& e);

}  // namespace nettag
