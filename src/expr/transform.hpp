// Equivalence-preserving Boolean rewrites (paper footnote 4: De Morgan,
// distributive, commutative, associative laws, etc.).
//
// Pre-training Objective #1 builds positive pairs for contrastive learning by
// applying a random sequence of these rules to an expression: the rewritten
// text differs but the Boolean function is identical. The same machinery
// drives functionally-equivalent netlist augmentation (Objective #2.2) via
// the logic-rewriting synthesis pass.
#pragma once

#include <string>
#include <vector>

#include "expr/expr.hpp"
#include "util/rng.hpp"

namespace nettag {

/// Identifiers for the individual rewrite rules (exposed for tests and for
/// the ablation benches).
enum class RewriteRule {
  kDeMorganExpand,    ///< !(a&b) -> (!a|!b), !(a|b) -> (!a&!b)
  kDeMorganFold,      ///< (!a|!b) -> !(a&b), (!a&!b) -> !(a|b)
  kDoubleNegInsert,   ///< x -> !!x
  kDoubleNegRemove,   ///< !!x -> x
  kCommutative,       ///< shuffle n-ary children
  kAssociativeGroup,  ///< (a&b&c) -> ((a&b)&c)
  kAssociativeFlatten,///< ((a&b)&c) -> (a&b&c)
  kDistribute,        ///< a&(b|c) -> (a&b)|(a&c)
  kXorExpand,         ///< a^b -> (a&!b)|(!a&b)
  kIdempotent,        ///< a -> (a&a) / (a|a)
  kIdentityConst,     ///< a -> (a|0) / (a&1)
};

/// All rules, in a stable order.
const std::vector<RewriteRule>& all_rewrite_rules();

/// Human-readable rule name (for logs/benches).
std::string rule_name(RewriteRule rule);

/// Applies `rule` once at a random applicable position. Returns the original
/// expression unchanged if the rule matches nowhere.
ExprPtr apply_rule(const ExprPtr& e, RewriteRule rule, Rng& rng);

/// Applies `steps` random rules (each drawn uniformly from all_rewrite_rules)
/// at random positions. The result is always functionally equivalent to the
/// input; with high probability its text differs.
ExprPtr random_equivalent(const ExprPtr& e, Rng& rng, int steps = 3);

/// Generates a *non*-equivalent mutant by structurally perturbing the
/// expression (operator swap or input negation) and re-rolling until the
/// function actually changes. Used to build hard negatives in tests and
/// encoder-quality probes. Returns nullptr if no mutant is found in
/// `max_tries` attempts (e.g. for constants).
ExprPtr random_nonequivalent(const ExprPtr& e, Rng& rng, int max_tries = 16);

}  // namespace nettag
