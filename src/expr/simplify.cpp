#include "expr/simplify.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <vector>

namespace nettag {

namespace {

bool is_const(const ExprPtr& e, bool value) {
  return e->kind() == (value ? ExprKind::kConst1 : ExprKind::kConst0);
}

/// Structural fingerprint used for duplicate/complement detection among
/// simplified siblings (children are already simplified, so printing is a
/// faithful canonical-enough key for *identical* subtrees).
std::string fingerprint(const ExprPtr& e) { return to_string(e); }

ExprPtr simplify_nary(ExprKind kind, std::vector<ExprPtr> kids);

ExprPtr simplify_rec(const ExprPtr& e) {
  switch (e->kind()) {
    case ExprKind::kConst0:
    case ExprKind::kConst1:
    case ExprKind::kVar:
      return e;
    case ExprKind::kNot: {
      ExprPtr c = simplify_rec(e->children()[0]);
      if (c->kind() == ExprKind::kNot) return c->children()[0];  // !!x
      if (is_const(c, false)) return Expr::constant(true);
      if (is_const(c, true)) return Expr::constant(false);
      if (c == e->children()[0]) return e;
      return Expr::lnot(std::move(c));
    }
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kXor: {
      std::vector<ExprPtr> kids;
      kids.reserve(e->children().size());
      for (const auto& c : e->children()) kids.push_back(simplify_rec(c));
      return simplify_nary(e->kind(), std::move(kids));
    }
  }
  return e;
}

ExprPtr simplify_nary(ExprKind kind, std::vector<ExprPtr> kids) {
  // Associative flattening of same-kind children.
  std::vector<ExprPtr> flat;
  for (auto& k : kids) {
    if (k->kind() == kind) {
      for (const auto& g : k->children()) flat.push_back(g);
    } else {
      flat.push_back(std::move(k));
    }
  }

  std::vector<ExprPtr> kept;
  int xor_const_ones = 0;
  for (auto& k : flat) {
    if (kind == ExprKind::kAnd) {
      if (is_const(k, false)) return Expr::constant(false);  // annihilator
      if (is_const(k, true)) continue;                       // identity
    } else if (kind == ExprKind::kOr) {
      if (is_const(k, true)) return Expr::constant(true);
      if (is_const(k, false)) continue;
    } else {  // XOR
      if (is_const(k, true)) {
        ++xor_const_ones;
        continue;
      }
      if (is_const(k, false)) continue;
    }
    kept.push_back(std::move(k));
  }

  // Duplicate / complement handling among kept children.
  std::map<std::string, int> seen;  // fingerprint -> index in result
  std::vector<ExprPtr> result;
  for (auto& k : kept) {
    const std::string fp = fingerprint(k);
    if (kind == ExprKind::kXor) {
      // x ^ x = 0: toggle membership.
      auto it = seen.find(fp);
      if (it != seen.end()) {
        result[static_cast<std::size_t>(it->second)] = nullptr;
        seen.erase(it);
        continue;
      }
      seen[fp] = static_cast<int>(result.size());
      result.push_back(std::move(k));
      continue;
    }
    // AND/OR: idempotence x op x = x.
    if (seen.count(fp)) continue;
    // Complement: x op !x = annihilator for AND(0)/OR(1).
    const std::string comp = k->kind() == ExprKind::kNot
                                 ? fingerprint(k->children()[0])
                                 : "!" + fp;
    if (seen.count(comp)) {
      return Expr::constant(kind == ExprKind::kOr);
    }
    seen[fp] = static_cast<int>(result.size());
    result.push_back(std::move(k));
  }
  // Compact XOR-cancelled slots.
  std::vector<ExprPtr> final_kids;
  for (auto& k : result) {
    if (k) final_kids.push_back(std::move(k));
  }

  if (kind == ExprKind::kXor && (xor_const_ones % 2)) {
    // Fold an odd number of XOR-ed 1s into a negation of the rest.
    if (final_kids.empty()) return Expr::constant(true);
    ExprPtr rest = final_kids.size() == 1 ? final_kids[0]
                                          : Expr::lxor(std::move(final_kids));
    // !!x collapses via the NOT rule on re-simplification; do it inline.
    if (rest->kind() == ExprKind::kNot) return rest->children()[0];
    return Expr::lnot(std::move(rest));
  }
  if (final_kids.empty()) {
    // Empty AND is the identity 1; empty OR/XOR is 0.
    return Expr::constant(kind == ExprKind::kAnd);
  }
  if (final_kids.size() == 1) return final_kids[0];
  switch (kind) {
    case ExprKind::kAnd:
      return Expr::land(std::move(final_kids));
    case ExprKind::kOr:
      return Expr::lor(std::move(final_kids));
    default:
      return Expr::lxor(std::move(final_kids));
  }
}

}  // namespace

ExprPtr simplify(const ExprPtr& e) {
  ExprPtr out = simplify_rec(e);
  // Size guarantee: local rules only remove or keep nodes, but guard anyway.
  return out->size() <= e->size() ? out : e;
}

}  // namespace nettag
