// Reduced Ordered Binary Decision Diagrams.
//
// The paper builds symbolic expressions with PySMT, a formal-verification
// toolkit; this BDD engine is the corresponding exact-reasoning substrate on
// our side. It provides canonical representations of Boolean functions, so
// expression equivalence (and netlist output equivalence) can be decided
// *exactly* for supports far beyond the truth-table limit, complementing the
// hash-based semantic_signature() fast path.
//
// Classic implementation: unique table for node hash-consing, memoized ITE.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "expr/expr.hpp"

namespace nettag {

/// Node reference inside a BddManager (0 = false terminal, 1 = true).
using BddRef = std::uint32_t;

/// Manager owning all nodes; BddRefs are only meaningful per-manager.
class BddManager {
 public:
  BddManager();

  static constexpr BddRef kFalse = 0;
  static constexpr BddRef kTrue = 1;

  /// Variable index for a name (created on first use; order = creation
  /// order, so callers control the variable order via first-touch).
  int var_index(const std::string& name);

  /// BDD for a single variable.
  BddRef var(const std::string& name);

  BddRef bdd_not(BddRef a);
  BddRef bdd_and(BddRef a, BddRef b);
  BddRef bdd_or(BddRef a, BddRef b);
  BddRef bdd_xor(BddRef a, BddRef b);
  /// If-then-else: the universal combinator the ops reduce to.
  BddRef ite(BddRef f, BddRef g, BddRef h);

  /// Builds the BDD of an expression (variables by name, first-touch order).
  BddRef build(const ExprPtr& expr);

  /// Evaluates the function under an assignment (missing vars = false).
  bool eval(BddRef f, const Assignment& assignment) const;

  /// Number of minterms over `num_vars` variables (satisfy count), as a
  /// double (exact for < 2^53).
  double sat_count(BddRef f, int num_vars) const;

  /// One satisfying assignment; empty optional-like flag via return:
  /// returns false when f == kFalse.
  bool pick_satisfying(BddRef f, Assignment* out) const;

  /// Total live nodes (terminals included) — growth/regression guard.
  std::size_t num_nodes() const { return nodes_.size(); }

  int num_vars() const { return static_cast<int>(var_names_.size()); }
  const std::string& var_name(int index) const {
    return var_names_[static_cast<std::size_t>(index)];
  }

 private:
  struct Node {
    int var;       ///< variable index; terminals use INT_MAX sentinel
    BddRef lo;     ///< cofactor for var = 0
    BddRef hi;     ///< cofactor for var = 1
  };

  BddRef make_node(int var, BddRef lo, BddRef hi);

  std::vector<Node> nodes_;
  std::vector<std::string> var_names_;
  std::unordered_map<std::string, int> var_index_;
  // Unique table: (var, lo, hi) -> ref.
  std::unordered_map<std::uint64_t, BddRef> unique_;
  // Memoized ITE: (f, g, h) -> ref.
  std::unordered_map<std::uint64_t, BddRef> ite_cache_;
};

/// Exact equivalence of two expressions via shared-manager BDDs. Unlike
/// semantically_equal(), this has no collision probability; use for supports
/// up to a few dozen variables.
bool bdd_equal(const ExprPtr& a, const ExprPtr& b);

/// Exact tautology / contradiction checks.
bool bdd_is_tautology(const ExprPtr& e);
bool bdd_is_contradiction(const ExprPtr& e);

}  // namespace nettag
