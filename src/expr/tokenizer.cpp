#include "expr/tokenizer.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace nettag {

namespace {

// Keywords that survive tokenization verbatim (lower-cased). This is the
// union of: gate/cell type names, attribute field names, and the RTL-level
// vocabulary emitted by rtlgen. Any other identifier is anonymized.
const std::vector<std::string>& attribute_keywords() {
  static const std::vector<std::string> kw = {
      // cell types (lower-cased names from the cell library)
      "inv", "buf", "and2", "and3", "and4", "nand2", "nand3", "nand4", "or2",
      "or3", "or4", "nor2", "nor3", "nor4", "xor2", "xnor2", "mux2", "aoi21",
      "aoi22", "oai21", "oai22", "maj3", "dff", "const0", "const1", "port",
      // attribute field names
      "gate", "type", "expr", "area", "power", "leak", "delay", "cap", "res",
      "load", "toggle", "prob", "slack", "fanin", "fanout", "drive", "phys",
      "func", "name", "net", "cone", "depth", "level",
      // RTL vocabulary (rtlgen pseudo-verilog)
      "module", "endmodule", "assign", "if", "else", "case", "reg", "wire",
      "input", "output", "always", "posedge", "clk", "rst", "begin", "end",
      "add", "sub", "mul", "cmp", "mux", "shift", "rotate", "eq", "lt", "gt",
      "sel", "out", "in", "state", "next", "fsm", "counter", "crc", "parity",
      "encode", "decode", "lfsr", "alu", "datapath", "control", "bitwise",
      "reduce", "not", "and", "or", "xor", "xnor", "nand", "nor",
      // misc
      "<num>",
  };
  return kw;
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '[' ||
         c == ']';
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

// "v3" / "b7" style tokens pass through untouched.
bool is_slot_token(const std::string& s) {
  if (s.size() < 2 || (s[0] != 'v' && s[0] != 'b')) return false;
  for (std::size_t i = 1; i < s.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return false;
  }
  return true;
}

}  // namespace

Vocab::Vocab() {
  add("[PAD]");
  add("[UNK]");
  add("[CLS]");
  pad_id_ = 0;
  unk_id_ = 1;
  cls_id_ = 2;
  // Single-character operator / punctuation tokens.
  for (char c : std::string("!&|^()=,:;{}<>+-*/@.")) {
    add(std::string(1, c));
  }
  add("0");
  add("1");
  for (const auto& kw : attribute_keywords()) add(kw);
  for (int i = 0; i < kMaxVars; ++i) add("v" + std::to_string(i));
  for (int i = 0; i < kNumBuckets; ++i) add("b" + std::to_string(i));
}

void Vocab::add(const std::string& token) {
  if (index_.count(token)) return;
  index_[token] = static_cast<int>(tokens_.size());
  tokens_.push_back(token);
}

int Vocab::id(const std::string& token) const {
  auto it = index_.find(token);
  return it == index_.end() ? unk_id_ : it->second;
}

const std::string& Vocab::token(int id) const {
  static const std::string kBad = "[BAD]";
  if (id < 0 || id >= size()) return kBad;
  return tokens_[static_cast<std::size_t>(id)];
}

std::vector<std::string> tokenize_text(const std::string& text) {
  static const std::vector<std::string>& kws = attribute_keywords();
  auto is_keyword = [&](const std::string& s) {
    return std::find(kws.begin(), kws.end(), s) != kws.end();
  };

  std::vector<std::string> out;
  std::unordered_map<std::string, std::string> anon;  // original -> vI
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t start = i;
      while (i < text.size() && is_ident_char(text[i])) ++i;
      std::string word = text.substr(start, i - start);
      const std::string low = lower(word);
      if (is_keyword(low)) {
        out.push_back(low);
      } else if (is_slot_token(low)) {
        out.push_back(low);
      } else {
        auto it = anon.find(word);
        if (it == anon.end()) {
          const int slot = static_cast<int>(anon.size()) % Vocab::kMaxVars;
          it = anon.emplace(word, "v" + std::to_string(slot)).first;
        }
        out.push_back(it->second);
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      while (i < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '.')) {
        ++i;
      }
      const std::string num = text.substr(start, i - start);
      if (num == "0" || num == "1") {
        out.push_back(num);
      } else {
        out.push_back("<num>");
      }
      continue;
    }
    out.push_back(std::string(1, c));
    ++i;
  }
  return out;
}

std::vector<int> encode_text(const Vocab& vocab, const std::string& text,
                             std::size_t max_len) {
  std::vector<std::string> toks = tokenize_text(text);
  if (max_len && toks.size() > max_len) toks.resize(max_len);
  std::vector<int> ids;
  ids.reserve(toks.size());
  for (const auto& t : toks) ids.push_back(vocab.id(t));
  return ids;
}

std::string bucket_token(double value, double lo, double hi) {
  const double v = std::max(value, 1e-12);
  const double l = std::log(std::max(lo, 1e-12));
  const double h = std::log(std::max(hi, lo * 2));
  double frac = (std::log(v) - l) / (h - l);
  frac = std::clamp(frac, 0.0, 0.999);
  const int bucket = static_cast<int>(frac * Vocab::kNumBuckets);
  return "b" + std::to_string(bucket);
}

}  // namespace nettag
