// Tokenizer and vocabulary for the text encoders (ExprEncoder / RtlEncoder).
//
// Gate text attributes mix Boolean-expression syntax, gate-type words, and
// bucketized physical quantities. To make the encoder generalize across
// designs, variable/instance names are anonymized on the fly: the i-th
// distinct identifier in a text becomes the token "vI" (I mod kMaxVars), so
// "U3 = !(R1|R2)" and "g7 = !(a|b)" produce identical token streams. This
// mirrors how LLM tokenization abstracts over surface names far better than
// per-name embeddings would at our scale.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

namespace nettag {

/// Fixed vocabulary shared by all text encoders. Token ids are stable across
/// runs (the vocabulary is constructed deterministically, not learned).
class Vocab {
 public:
  Vocab();

  /// Id of a token; unknown tokens map to the [UNK] id.
  int id(const std::string& token) const;

  /// Token string for an id (for debugging).
  const std::string& token(int id) const;

  int size() const { return static_cast<int>(tokens_.size()); }

  int pad_id() const { return pad_id_; }
  int unk_id() const { return unk_id_; }
  int cls_id() const { return cls_id_; }

  /// Number of anonymized-variable slots ("v0".."v{N-1}").
  static constexpr int kMaxVars = 24;
  /// Number of buckets for each physical quantity ("b0".."b{N-1}").
  static constexpr int kNumBuckets = 8;

 private:
  void add(const std::string& token);

  std::vector<std::string> tokens_;
  std::unordered_map<std::string, int> index_;
  int pad_id_ = 0, unk_id_ = 0, cls_id_ = 0;
};

/// Splits attribute text into raw token strings. Identifiers are anonymized
/// per-call ("v0", "v1", ... in order of first appearance); operators,
/// punctuation, keywords, and bucket tokens pass through.
std::vector<std::string> tokenize_text(const std::string& text);

/// Tokenizes and converts to ids, truncating to `max_len` (0 = no limit).
std::vector<int> encode_text(const Vocab& vocab, const std::string& text,
                             std::size_t max_len = 0);

/// Maps a physical quantity to its bucket token ("b0".."b7") using a
/// logarithmic scale over [lo, hi]. Values outside clamp to the end buckets.
std::string bucket_token(double value, double lo, double hi);

}  // namespace nettag
