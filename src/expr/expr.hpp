// Boolean symbolic expression engine.
//
// This replaces the paper's use of PySMT: it provides the symbolic logic
// expressions that annotate each netlist gate in the text-attributed graph
// (TAG) format, plus the machinery needed by pre-training Objective #1
// (equivalence-preserving transforms live in transform.hpp).
//
// Expressions are immutable DAG nodes shared via shared_ptr, so k-hop cone
// extraction over large netlists reuses subexpressions instead of copying.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace nettag {

enum class ExprKind : std::uint8_t {
  kConst0,
  kConst1,
  kVar,
  kNot,
  kAnd,  ///< n-ary (>= 2 children)
  kOr,   ///< n-ary (>= 2 children)
  kXor,  ///< n-ary (>= 2 children)
};

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// One immutable Boolean expression node.
class Expr {
 public:
  ExprKind kind() const { return kind_; }
  const std::string& var_name() const { return var_; }
  const std::vector<ExprPtr>& children() const { return children_; }

  /// Total node count (with DAG sharing counted once per occurrence in the
  /// tree view — i.e. tree size, which is what the token statistics measure).
  std::size_t size() const;

  /// Longest root-to-leaf path length (leaf = depth 1).
  std::size_t depth() const;

  // Factory functions. N-ary factories require >= 1 child; a single child is
  // returned unwrapped for and/or/xor.
  static ExprPtr constant(bool value);
  static ExprPtr var(std::string name);
  static ExprPtr lnot(ExprPtr a);
  static ExprPtr land(std::vector<ExprPtr> kids);
  static ExprPtr lor(std::vector<ExprPtr> kids);
  static ExprPtr lxor(std::vector<ExprPtr> kids);
  static ExprPtr land(ExprPtr a, ExprPtr b) { return land({std::move(a), std::move(b)}); }
  static ExprPtr lor(ExprPtr a, ExprPtr b) { return lor({std::move(a), std::move(b)}); }
  static ExprPtr lxor(ExprPtr a, ExprPtr b) { return lxor({std::move(a), std::move(b)}); }

 private:
  Expr(ExprKind kind, std::string var, std::vector<ExprPtr> kids)
      : kind_(kind), var_(std::move(var)), children_(std::move(kids)) {}

  static ExprPtr nary(ExprKind kind, std::vector<ExprPtr> kids);

  ExprKind kind_;
  std::string var_;
  std::vector<ExprPtr> children_;
};

/// Variable assignment for evaluation; missing variables default to false.
using Assignment = std::unordered_map<std::string, bool>;

/// Evaluates the expression under the given assignment.
bool eval(const ExprPtr& e, const Assignment& a);

/// Sorted, de-duplicated list of variable names appearing in the expression.
std::vector<std::string> support(const ExprPtr& e);

/// Renders the expression in the paper's text style, e.g. "!((R1^R2)|!R2)".
/// N-ary operators are parenthesized as one group: "(a&b&c)".
std::string to_string(const ExprPtr& e);

/// Exhaustive truth table over the expression's support; bit i of the result
/// corresponds to assignment i (variable j of the sorted support = bit j of
/// i). Only valid when support size <= 20; larger supports abort.
std::vector<bool> truth_table(const ExprPtr& e);

/// 64-bit semantic signature: exact truth-table hash when the support is
/// small, otherwise a hash of the outputs under `kSemanticSamples`
/// deterministic pseudo-random assignments. Equal expressions always get
/// equal signatures; unequal ones collide with negligible probability.
std::uint64_t semantic_signature(const ExprPtr& e);

/// True when the two expressions compute the same function of their combined
/// support (exact for small supports, sampled otherwise).
bool semantically_equal(const ExprPtr& a, const ExprPtr& b);

/// Parses the textual format produced by to_string(). Grammar (precedence
/// low->high): or ('|'), xor ('^'), and ('&'), not ('!'), atom
/// (identifier | '0' | '1' | '(' expr ')'). Throws std::invalid_argument on
/// malformed input.
ExprPtr parse_expr(const std::string& text);

}  // namespace nettag
