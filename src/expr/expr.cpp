#include "expr/expr.hpp"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <set>
#include <stdexcept>

namespace nettag {

std::size_t Expr::size() const {
  std::size_t n = 1;
  for (const auto& c : children_) n += c->size();
  return n;
}

std::size_t Expr::depth() const {
  std::size_t d = 0;
  for (const auto& c : children_) d = std::max(d, c->depth());
  return d + 1;
}

ExprPtr Expr::constant(bool value) {
  return ExprPtr(new Expr(value ? ExprKind::kConst1 : ExprKind::kConst0, {}, {}));
}

ExprPtr Expr::var(std::string name) {
  return ExprPtr(new Expr(ExprKind::kVar, std::move(name), {}));
}

ExprPtr Expr::lnot(ExprPtr a) {
  return ExprPtr(new Expr(ExprKind::kNot, {}, {std::move(a)}));
}

ExprPtr Expr::nary(ExprKind kind, std::vector<ExprPtr> kids) {
  if (kids.empty()) throw std::invalid_argument("n-ary expr needs children");
  if (kids.size() == 1) return kids.front();
  return ExprPtr(new Expr(kind, {}, std::move(kids)));
}

ExprPtr Expr::land(std::vector<ExprPtr> kids) {
  return nary(ExprKind::kAnd, std::move(kids));
}
ExprPtr Expr::lor(std::vector<ExprPtr> kids) {
  return nary(ExprKind::kOr, std::move(kids));
}
ExprPtr Expr::lxor(std::vector<ExprPtr> kids) {
  return nary(ExprKind::kXor, std::move(kids));
}

bool eval(const ExprPtr& e, const Assignment& a) {
  switch (e->kind()) {
    case ExprKind::kConst0:
      return false;
    case ExprKind::kConst1:
      return true;
    case ExprKind::kVar: {
      auto it = a.find(e->var_name());
      return it != a.end() && it->second;
    }
    case ExprKind::kNot:
      return !eval(e->children()[0], a);
    case ExprKind::kAnd:
      for (const auto& c : e->children())
        if (!eval(c, a)) return false;
      return true;
    case ExprKind::kOr:
      for (const auto& c : e->children())
        if (eval(c, a)) return true;
      return false;
    case ExprKind::kXor: {
      bool acc = false;
      for (const auto& c : e->children()) acc ^= eval(c, a);
      return acc;
    }
  }
  return false;  // unreachable
}

namespace {
void collect_support(const ExprPtr& e, std::set<std::string>& out) {
  if (e->kind() == ExprKind::kVar) {
    out.insert(e->var_name());
    return;
  }
  for (const auto& c : e->children()) collect_support(c, out);
}
}  // namespace

std::vector<std::string> support(const ExprPtr& e) {
  std::set<std::string> s;
  collect_support(e, s);
  return {s.begin(), s.end()};
}

namespace {
void print(const ExprPtr& e, std::string& out) {
  switch (e->kind()) {
    case ExprKind::kConst0:
      out += '0';
      return;
    case ExprKind::kConst1:
      out += '1';
      return;
    case ExprKind::kVar:
      out += e->var_name();
      return;
    case ExprKind::kNot:
      // N-ary children print their own parentheses, and vars/consts/NOTs
      // bind tighter than '!', so no extra parens are ever needed.
      out += '!';
      print(e->children()[0], out);
      return;
    case ExprKind::kAnd:
    case ExprKind::kOr:
    case ExprKind::kXor: {
      const char op = e->kind() == ExprKind::kAnd   ? '&'
                      : e->kind() == ExprKind::kOr ? '|'
                                                   : '^';
      out += '(';
      for (std::size_t i = 0; i < e->children().size(); ++i) {
        if (i) out += op;
        print(e->children()[i], out);
      }
      out += ')';
      return;
    }
  }
}
}  // namespace

std::string to_string(const ExprPtr& e) {
  std::string out;
  out.reserve(e->size() * 3);
  print(e, out);
  return out;
}

std::vector<bool> truth_table(const ExprPtr& e) {
  const auto vars = support(e);
  if (vars.size() > 20) {
    throw std::invalid_argument("truth_table: support too large");
  }
  const std::size_t rows = std::size_t{1} << vars.size();
  std::vector<bool> table(rows);
  Assignment a;
  for (std::size_t row = 0; row < rows; ++row) {
    for (std::size_t j = 0; j < vars.size(); ++j) {
      a[vars[j]] = (row >> j) & 1u;
    }
    table[row] = eval(e, a);
  }
  return table;
}

namespace {

constexpr int kSemanticSamples = 192;
constexpr int kExactSupportLimit = 12;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

// Signature relative to an explicit variable ordering, so that two
// expressions are compared over their *combined* support.
std::uint64_t signature_over(const ExprPtr& e,
                             const std::vector<std::string>& vars) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  if (vars.size() <= kExactSupportLimit) {
    const std::size_t rows = std::size_t{1} << vars.size();
    Assignment a;
    std::uint64_t word = 0;
    for (std::size_t row = 0; row < rows; ++row) {
      for (std::size_t j = 0; j < vars.size(); ++j) a[vars[j]] = (row >> j) & 1u;
      word = (word << 1) | static_cast<std::uint64_t>(eval(e, a));
      if ((row & 63u) == 63u || row + 1 == rows) {
        h = mix(h, word);
        word = 0;
      }
    }
    h = mix(h, vars.size());
    return h;
  }
  // Sampled signature: assignments derived deterministically from the
  // variable names, so the same combined support yields the same samples.
  Assignment a;
  std::uint64_t word = 0;
  for (int s = 0; s < kSemanticSamples; ++s) {
    for (std::size_t j = 0; j < vars.size(); ++j) {
      const std::uint64_t bits =
          mix(fnv1a(vars[j]), static_cast<std::uint64_t>(s) * 0x2545F4914F6CDD1Dull);
      a[vars[j]] = bits & 1u;
    }
    word = (word << 1) | static_cast<std::uint64_t>(eval(e, a));
    if ((s & 63) == 63 || s + 1 == kSemanticSamples) {
      h = mix(h, word);
      word = 0;
    }
  }
  return h;
}

}  // namespace

std::uint64_t semantic_signature(const ExprPtr& e) {
  return signature_over(e, support(e));
}

bool semantically_equal(const ExprPtr& a, const ExprPtr& b) {
  std::set<std::string> both;
  collect_support(a, both);
  collect_support(b, both);
  const std::vector<std::string> vars(both.begin(), both.end());
  return signature_over(a, vars) == signature_over(b, vars);
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  ExprPtr parse() {
    ExprPtr e = parse_or();
    skip_ws();
    if (pos_ != text_.size()) {
      throw std::invalid_argument("parse_expr: trailing input at " +
                                  std::to_string(pos_));
    }
    return e;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool accept(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  ExprPtr parse_or() {
    std::vector<ExprPtr> kids{parse_xor()};
    while (accept('|')) kids.push_back(parse_xor());
    return Expr::lor(std::move(kids));
  }

  ExprPtr parse_xor() {
    std::vector<ExprPtr> kids{parse_and()};
    while (accept('^')) kids.push_back(parse_and());
    return Expr::lxor(std::move(kids));
  }

  ExprPtr parse_and() {
    std::vector<ExprPtr> kids{parse_unary()};
    while (accept('&')) kids.push_back(parse_unary());
    return Expr::land(std::move(kids));
  }

  ExprPtr parse_unary() {
    if (accept('!')) return Expr::lnot(parse_unary());
    return parse_atom();
  }

  ExprPtr parse_atom() {
    skip_ws();
    if (pos_ >= text_.size()) throw std::invalid_argument("parse_expr: unexpected end");
    const char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      ExprPtr e = parse_or();
      if (!accept(')')) throw std::invalid_argument("parse_expr: missing ')'");
      return e;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '[' || text_[pos_] == ']')) {
        ++pos_;
      }
      return Expr::var(text_.substr(start, pos_ - start));
    }
    if (c == '0' || c == '1') {
      ++pos_;
      return Expr::constant(c == '1');
    }
    throw std::invalid_argument(std::string("parse_expr: unexpected char '") + c + "'");
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

ExprPtr parse_expr(const std::string& text) { return Parser(text).parse(); }

}  // namespace nettag
