#include "expr/transform.hpp"

#include <cassert>
#include <functional>

namespace nettag {

namespace {

// Collects every node of the tree in preorder. Index 0 is the root.
void collect_nodes(const ExprPtr& e, std::vector<ExprPtr>& out) {
  out.push_back(e);
  for (const auto& c : e->children()) collect_nodes(c, out);
}

// Rebuilds the tree with the node at preorder index `target` replaced by
// `replacement`. `cursor` threads the preorder position.
ExprPtr replace_at(const ExprPtr& e, std::size_t target, const ExprPtr& replacement,
                   std::size_t& cursor) {
  const std::size_t my_index = cursor++;
  if (my_index == target) return replacement;
  if (e->children().empty()) return e;
  std::vector<ExprPtr> kids;
  kids.reserve(e->children().size());
  bool changed = false;
  for (const auto& c : e->children()) {
    ExprPtr nc = replace_at(c, target, replacement, cursor);
    changed = changed || nc != c;
    kids.push_back(std::move(nc));
  }
  if (!changed) return e;
  switch (e->kind()) {
    case ExprKind::kNot:
      return Expr::lnot(kids[0]);
    case ExprKind::kAnd:
      return Expr::land(std::move(kids));
    case ExprKind::kOr:
      return Expr::lor(std::move(kids));
    case ExprKind::kXor:
      return Expr::lxor(std::move(kids));
    default:
      return e;  // leaves have no children; unreachable
  }
}

ExprPtr rebuild_with(const ExprPtr& root, std::size_t target, const ExprPtr& node) {
  std::size_t cursor = 0;
  return replace_at(root, target, node, cursor);
}

bool is_nary(const ExprPtr& e) {
  return e->kind() == ExprKind::kAnd || e->kind() == ExprKind::kOr ||
         e->kind() == ExprKind::kXor;
}

ExprPtr make_same(ExprKind kind, std::vector<ExprPtr> kids) {
  switch (kind) {
    case ExprKind::kAnd:
      return Expr::land(std::move(kids));
    case ExprKind::kOr:
      return Expr::lor(std::move(kids));
    case ExprKind::kXor:
      return Expr::lxor(std::move(kids));
    default:
      assert(false);
      return kids.front();
  }
}

// Tries to apply the rule to this specific node; returns nullptr if the rule
// does not match here.
ExprPtr apply_here(const ExprPtr& e, RewriteRule rule, Rng& rng) {
  switch (rule) {
    case RewriteRule::kDeMorganExpand: {
      if (e->kind() != ExprKind::kNot) return nullptr;
      const ExprPtr& c = e->children()[0];
      if (c->kind() != ExprKind::kAnd && c->kind() != ExprKind::kOr) return nullptr;
      std::vector<ExprPtr> kids;
      kids.reserve(c->children().size());
      for (const auto& k : c->children()) kids.push_back(Expr::lnot(k));
      return c->kind() == ExprKind::kAnd ? Expr::lor(std::move(kids))
                                         : Expr::land(std::move(kids));
    }
    case RewriteRule::kDeMorganFold: {
      if (e->kind() != ExprKind::kAnd && e->kind() != ExprKind::kOr) return nullptr;
      for (const auto& k : e->children()) {
        if (k->kind() != ExprKind::kNot) return nullptr;
      }
      std::vector<ExprPtr> kids;
      kids.reserve(e->children().size());
      for (const auto& k : e->children()) kids.push_back(k->children()[0]);
      return Expr::lnot(e->kind() == ExprKind::kAnd ? Expr::lor(std::move(kids))
                                                    : Expr::land(std::move(kids)));
    }
    case RewriteRule::kDoubleNegInsert:
      return Expr::lnot(Expr::lnot(e));
    case RewriteRule::kDoubleNegRemove: {
      if (e->kind() != ExprKind::kNot) return nullptr;
      const ExprPtr& c = e->children()[0];
      if (c->kind() != ExprKind::kNot) return nullptr;
      return c->children()[0];
    }
    case RewriteRule::kCommutative: {
      if (!is_nary(e) || e->children().size() < 2) return nullptr;
      std::vector<ExprPtr> kids = e->children();
      rng.shuffle(kids);
      return make_same(e->kind(), std::move(kids));
    }
    case RewriteRule::kAssociativeGroup: {
      if (!is_nary(e) || e->children().size() < 3) return nullptr;
      // Group the first two children into a nested node of the same kind.
      std::vector<ExprPtr> kids = e->children();
      ExprPtr pair = make_same(e->kind(), {kids[0], kids[1]});
      std::vector<ExprPtr> rest{pair};
      rest.insert(rest.end(), kids.begin() + 2, kids.end());
      return make_same(e->kind(), std::move(rest));
    }
    case RewriteRule::kAssociativeFlatten: {
      if (!is_nary(e)) return nullptr;
      bool has_nested = false;
      std::vector<ExprPtr> flat;
      for (const auto& k : e->children()) {
        if (k->kind() == e->kind()) {
          has_nested = true;
          for (const auto& g : k->children()) flat.push_back(g);
        } else {
          flat.push_back(k);
        }
      }
      if (!has_nested) return nullptr;
      return make_same(e->kind(), std::move(flat));
    }
    case RewriteRule::kDistribute: {
      // a & (b|c) -> (a&b)|(a&c); also the dual with & and | swapped.
      if (e->kind() != ExprKind::kAnd && e->kind() != ExprKind::kOr) return nullptr;
      const ExprKind inner_kind =
          e->kind() == ExprKind::kAnd ? ExprKind::kOr : ExprKind::kAnd;
      // Find a child of the inner kind to distribute over.
      int pick = -1;
      for (std::size_t i = 0; i < e->children().size(); ++i) {
        if (e->children()[i]->kind() == inner_kind) {
          pick = static_cast<int>(i);
          break;
        }
      }
      if (pick < 0 || e->children().size() < 2) return nullptr;
      // Rest = conjunction (resp. disjunction) of remaining children.
      std::vector<ExprPtr> rest;
      for (std::size_t i = 0; i < e->children().size(); ++i) {
        if (static_cast<int>(i) != pick) rest.push_back(e->children()[i]);
      }
      const ExprPtr rest_node =
          rest.size() == 1 ? rest[0] : make_same(e->kind(), rest);
      std::vector<ExprPtr> terms;
      for (const auto& inner : e->children()[pick]->children()) {
        terms.push_back(make_same(e->kind(), {rest_node, inner}));
      }
      return make_same(inner_kind, std::move(terms));
    }
    case RewriteRule::kXorExpand: {
      if (e->kind() != ExprKind::kXor || e->children().size() != 2) return nullptr;
      const ExprPtr& a = e->children()[0];
      const ExprPtr& b = e->children()[1];
      return Expr::lor(Expr::land(a, Expr::lnot(b)), Expr::land(Expr::lnot(a), b));
    }
    case RewriteRule::kIdempotent: {
      if (e->kind() == ExprKind::kXor) return nullptr;  // a^a == 0, not a
      return rng.chance(0.5) ? Expr::land(e, e) : Expr::lor(e, e);
    }
    case RewriteRule::kIdentityConst:
      return rng.chance(0.5) ? Expr::lor(e, Expr::constant(false))
                             : Expr::land(e, Expr::constant(true));
  }
  return nullptr;
}

}  // namespace

const std::vector<RewriteRule>& all_rewrite_rules() {
  static const std::vector<RewriteRule> rules = {
      RewriteRule::kDeMorganExpand,    RewriteRule::kDeMorganFold,
      RewriteRule::kDoubleNegInsert,   RewriteRule::kDoubleNegRemove,
      RewriteRule::kCommutative,       RewriteRule::kAssociativeGroup,
      RewriteRule::kAssociativeFlatten, RewriteRule::kDistribute,
      RewriteRule::kXorExpand,         RewriteRule::kIdempotent,
      RewriteRule::kIdentityConst,
  };
  return rules;
}

std::string rule_name(RewriteRule rule) {
  switch (rule) {
    case RewriteRule::kDeMorganExpand: return "demorgan_expand";
    case RewriteRule::kDeMorganFold: return "demorgan_fold";
    case RewriteRule::kDoubleNegInsert: return "double_neg_insert";
    case RewriteRule::kDoubleNegRemove: return "double_neg_remove";
    case RewriteRule::kCommutative: return "commutative";
    case RewriteRule::kAssociativeGroup: return "associative_group";
    case RewriteRule::kAssociativeFlatten: return "associative_flatten";
    case RewriteRule::kDistribute: return "distribute";
    case RewriteRule::kXorExpand: return "xor_expand";
    case RewriteRule::kIdempotent: return "idempotent";
    case RewriteRule::kIdentityConst: return "identity_const";
  }
  return "unknown";
}

ExprPtr apply_rule(const ExprPtr& e, RewriteRule rule, Rng& rng) {
  std::vector<ExprPtr> nodes;
  collect_nodes(e, nodes);
  // Try nodes in random order until one accepts the rule.
  std::vector<std::size_t> order(nodes.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  for (std::size_t idx : order) {
    if (ExprPtr repl = apply_here(nodes[idx], rule, rng)) {
      return rebuild_with(e, idx, repl);
    }
  }
  return e;
}

ExprPtr random_equivalent(const ExprPtr& e, Rng& rng, int steps) {
  ExprPtr cur = e;
  const auto& rules = all_rewrite_rules();
  for (int s = 0; s < steps; ++s) {
    cur = apply_rule(cur, rules[rng.index(rules.size())], rng);
  }
  return cur;
}

ExprPtr random_nonequivalent(const ExprPtr& e, Rng& rng, int max_tries) {
  std::vector<ExprPtr> nodes;
  collect_nodes(e, nodes);
  for (int t = 0; t < max_tries; ++t) {
    const std::size_t idx = rng.index(nodes.size());
    const ExprPtr& n = nodes[idx];
    ExprPtr mutant;
    if (is_nary(n)) {
      // Swap the operator.
      const ExprKind new_kind = n->kind() == ExprKind::kAnd ? ExprKind::kOr
                                : n->kind() == ExprKind::kOr ? ExprKind::kXor
                                                             : ExprKind::kAnd;
      mutant = make_same(new_kind, n->children());
    } else {
      mutant = n->kind() == ExprKind::kNot ? n->children()[0] : Expr::lnot(n);
    }
    ExprPtr candidate = rebuild_with(e, idx, mutant);
    if (!semantically_equal(candidate, e)) return candidate;
  }
  return nullptr;
}

}  // namespace nettag
