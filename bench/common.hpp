// Shared setup for the table/figure reproduction benches: builds the corpus,
// constructs and pre-trains NetTAG with fixed seeds so every bench is
// deterministic and self-contained.
#pragma once

#include <cstdio>
#include <memory>

#include "core/pretrain.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace nettag::bench {

struct Setup {
  Corpus corpus;
  std::unique_ptr<NetTag> model;
  Rng rng{0};
  PretrainReport pretrain_report;
};

/// Standard experiment setup. `designs_per_family` controls corpus size;
/// pass a customized PretrainOptions/NetTagConfig for ablation/scaling arms.
inline Setup make_setup(int designs_per_family = 6,
                        PretrainOptions pretrain_options = {},
                        NetTagConfig model_config = {},
                        std::uint64_t seed = 20250705) {
  Setup s;
  s.rng = Rng(seed);
  CorpusOptions co;
  co.designs_per_family = designs_per_family;
  Timer t;
  s.corpus = build_corpus(co, s.rng);
  std::printf("# corpus: %zu designs (%.1fs)\n", s.corpus.designs.size(),
              t.seconds());
  t.reset();
  s.model = std::make_unique<NetTag>(model_config, seed ^ 0xabcd);
  s.pretrain_report = pretrain(*s.model, s.corpus, pretrain_options, s.rng);
  std::printf(
      "# pretrain: expr loss %.3f -> %.3f (%zu exprs), tag loss %.3f -> %.3f "
      "(%zu cones), %.1fs\n",
      s.pretrain_report.expr_loss_first, s.pretrain_report.expr_loss_last,
      s.pretrain_report.expr_dataset_size, s.pretrain_report.tag_loss_first,
      s.pretrain_report.tag_loss_last, s.pretrain_report.cones_used,
      s.pretrain_report.seconds_step1 + s.pretrain_report.seconds_step2);
  return s;
}

}  // namespace nettag::bench
