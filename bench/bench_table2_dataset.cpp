// Reproduces Table II: statistics of the circuit expression and netlist
// (register-cone) dataset per benchmark family.
//
// Paper reference (Table II): per source — expression count / average token
// length, and cone count / average node count; e.g. OpenCores has the
// shortest expressions and smallest cones, Chipyard the largest. Absolute
// counts here are scaled down (~100x) with the same relative shape.
#include <iostream>

#include "core/dataset.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace nettag;

int main() {
  Rng rng(20250705);
  CorpusOptions co;
  co.designs_per_family = 6;
  Timer t;
  const Corpus corpus = build_corpus(co, rng);
  const auto stats = corpus_statistics(corpus, co.k_hop);

  std::cout << "== Table II: statistics of circuit expression and netlist "
               "dataset ==\n";
  TextTable table;
  table.set_header({"Source", "# Expr", "# Tokens (Avg.)", "# Cones",
                    "# Nodes (Avg.)"});
  std::size_t expr_total = 0, cone_total = 0;
  double tok_weighted = 0, node_weighted = 0;
  for (const FamilyStats& fs : stats) {
    table.add_row({fs.family, std::to_string(fs.expr_count),
                   fmt(fs.avg_expr_tokens, 1), std::to_string(fs.cone_count),
                   fmt(fs.avg_cone_nodes, 1)});
    expr_total += fs.expr_count;
    cone_total += fs.cone_count;
    tok_weighted += fs.avg_expr_tokens * static_cast<double>(fs.expr_count);
    node_weighted += fs.avg_cone_nodes * static_cast<double>(fs.cone_count);
  }
  table.add_separator();
  table.add_row({"Total", std::to_string(expr_total),
                 fmt(expr_total ? tok_weighted / static_cast<double>(expr_total) : 0, 1),
                 std::to_string(cone_total),
                 fmt(cone_total ? node_weighted / static_cast<double>(cone_total) : 0, 1)});
  table.print(std::cout);
  std::cout << "# built in " << fmt(t.seconds(), 1) << "s\n"
            << "# paper shape check: opencores has the smallest cones/"
               "expressions, chipyard the largest\n";
  return 0;
}
