// NetTAG-Serve daemon soak bench: hundreds of concurrent socket clients
// against one sharded daemon (docs/PERFORMANCE.md §8).
//
// Unlike the other benches this one is multi-PROCESS: the parent hosts the
// daemon in-process and fork+execs *itself* in `--client` mode, so every
// client lives in its own process with real sockets, real scheduling, and
// no shared memory with the server — the closest in-tree approximation of
// production traffic. (Plain fork without exec is unsafe here: the parent
// is multi-threaded by the time clients spawn.)
//
// Three arms, all over a zipf-skewed mix of distinct ladder netlists (skew
// models production traffic: a few hot designs, a long cold tail):
//   * single_client — one process, one connection, sequential requests: the
//     daemon-transport latency floor (compare BENCH_serve_throughput.json's
//     single_client, which measures the in-process server without sockets);
//   * soak          — 24 processes x 8 connections = 192 concurrent clients
//     hammering the shared-cache daemon; the pass bar is zero protocol
//     errors and multi-client qps >= the in-process single-client reference;
//   * forced_shed   — a deliberately starved daemon (1 shard, queue depth 1)
//     under cold cache-missing traffic: backpressure must answer `too_busy`
//     (counted, not an error) and never drop a connection or corrupt a line.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "net/client.hpp"
#include "net/daemon.hpp"
#include "nn/gemm.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace nettag;

namespace {

constexpr int kDistinct = 64;     ///< distinct netlists in the zipf pool
constexpr double kZipfAlpha = 1.1;

/// Same ladder construction as bench_serve_throughput: depth plus extra INV
/// perturbation gates make every rank a distinct structure.
std::string ladder_netlist(int depth) {
  std::string text = "module ladder source synthetic\nport a\nport b\n";
  std::string prev_a = "a", prev_b = "b";
  for (int i = 0; i < depth; ++i) {
    const std::string n1 = "n" + std::to_string(2 * i);
    const std::string n2 = "n" + std::to_string(2 * i + 1);
    text += "gate AND2 " + n1 + " " + prev_a + " " + prev_b + "\n";
    text += "gate INV " + n2 + " " + n1 + "\n";
    prev_a = n1;
    prev_b = n2;
  }
  text += "gate OR2 y " + prev_a + " " + prev_b + " out\nendmodule\n";
  return text;
}

std::string zipf_pool_netlist(int rank) {
  std::string text = ladder_netlist(2 + rank % 12);
  for (int x = 0; x < rank / 12; ++x) {
    text.insert(text.find("endmodule"),
                "gate INV extra" + std::to_string(x) + " y\n");
  }
  return text;
}

/// A unique (never cache-hitting) netlist for the forced-shed arm: deep
/// enough that processing is slow relative to arrival.
std::string distinct_netlist(int proc, int conn, int i) {
  std::string text = ladder_netlist(24);
  text.insert(text.find("endmodule"),
              "gate INV u" + std::to_string(proc) + "_" +
                  std::to_string(conn) + "_" + std::to_string(i) + " y\n");
  return text;
}

/// Zipf CDF over ranks 1..kDistinct with exponent kZipfAlpha.
std::vector<double> zipf_cdf() {
  std::vector<double> cdf(kDistinct);
  double total = 0;
  for (int r = 0; r < kDistinct; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), kZipfAlpha);
    cdf[r] = total;
  }
  for (double& c : cdf) c /= total;
  return cdf;
}

int zipf_sample(const std::vector<double>& cdf, std::uint64_t* state) {
  // xorshift64*: cheap, seedable, good enough to exercise a cache.
  std::uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  const double u =
      static_cast<double>((x * 2685821657736338717ull) >> 11) / 9007199254740992.0;
  for (int r = 0; r < kDistinct; ++r) {
    if (u <= cdf[r]) return r;
  }
  return kDistinct - 1;
}

// --- client mode ------------------------------------------------------------

struct ClientTally {
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> shed{0};
  std::atomic<std::uint64_t> errors{0};
};

/// One connection's request loop. Any transport failure, malformed response
/// line, or unexpected error code is a protocol error; `too_busy` is counted
/// separately (it is the correct backpressure answer, not a failure).
void client_connection(const std::string& spec, int proc, int conn, int reqs,
                       bool zipf_workload, ClientTally* tally) {
  net::Client::Options opts;
  opts.connect_timeout_ms = 10000;
  opts.io_timeout_ms = 60000;
  net::Client client(opts);
  std::string error;
  if (!client.connect(spec, &error)) {
    // A dropped/refused connection is exactly what the daemon must never
    // do under load — count every request this connection would have made.
    tally->errors.fetch_add(static_cast<std::uint64_t>(reqs));
    std::fprintf(stderr, "soak client %d/%d: connect: %s\n", proc, conn,
                 error.c_str());
    return;
  }
  const std::vector<double> cdf = zipf_cdf();
  std::uint64_t rng = 0x9e3779b97f4a7c15ull ^
                      (static_cast<std::uint64_t>(proc) << 32) ^
                      static_cast<std::uint64_t>(conn + 1);
  for (int i = 0; i < reqs; ++i) {
    const std::string id = std::to_string(proc) + "-" + std::to_string(conn) +
                           "-" + std::to_string(i);
    serve::Json req = serve::Json::object();
    req.set("id", id);
    req.set("op", "embed_gates");
    req.set("netlist", zipf_workload
                           ? zipf_pool_netlist(zipf_sample(cdf, &rng))
                           : distinct_netlist(proc, conn, i));
    std::string response;
    if (!client.request(req.dump(), &response, &error)) {
      tally->errors.fetch_add(1);
      std::fprintf(stderr, "soak client %d/%d: %s\n", proc, conn,
                   error.c_str());
      return;  // connection is gone; remaining requests not attempted
    }
    serve::Json j;
    if (!serve::Json::parse(response, &j, &error) ||
        j.find("id") == nullptr || j.find("id")->as_string() != id ||
        j.find("status") == nullptr) {
      tally->errors.fetch_add(1);
      continue;
    }
    const std::string status = j.find("status")->as_string();
    if (status == "ok") {
      tally->ok.fetch_add(1);
    } else if (status == "error" && j.find("error") != nullptr &&
               j.find("error")->find("code") != nullptr &&
               j.find("error")->find("code")->as_string() == "too_busy") {
      tally->shed.fetch_add(1);
    } else {
      tally->errors.fetch_add(1);
    }
  }
}

int run_client_mode(int argc, char** argv) {
  // --client <spec> <proc_idx> <conns> <reqs_per_conn> <zipf|distinct> <out>
  if (argc != 8) {
    std::fprintf(stderr, "bench_serve_soak --client: bad argv\n");
    return 2;
  }
  const std::string spec = argv[2];
  const int proc = std::atoi(argv[3]);
  const int conns = std::atoi(argv[4]);
  const int reqs = std::atoi(argv[5]);
  const bool zipf_workload = !std::strcmp(argv[6], "zipf");
  const std::string out_path = argv[7];

  ClientTally tally;
  std::vector<std::thread> threads;
  threads.reserve(conns);
  for (int c = 0; c < conns; ++c) {
    threads.emplace_back(client_connection, spec, proc, c, reqs,
                         zipf_workload, &tally);
  }
  for (std::thread& t : threads) t.join();

  std::ofstream out(out_path);
  out << tally.ok.load() << ' ' << tally.shed.load() << ' '
      << tally.errors.load() << '\n';
  return 0;
}

// --- parent orchestration ---------------------------------------------------

struct ArmResult {
  std::string mode;
  std::uint64_t requests = 0;  ///< ok + shed (every answered request)
  std::uint64_t shed = 0;
  std::uint64_t protocol_errors = 0;
  double seconds = 0;
  double qps() const { return requests / std::max(seconds, 1e-9); }
};

/// Spawns `procs` copies of self in --client mode and aggregates their
/// tallies. Returns false if any child failed to run at all.
bool run_clients(const std::string& self_exe, const std::string& spec,
                 int procs, int conns, int reqs, const char* workload,
                 ArmResult* result) {
  std::vector<pid_t> pids;
  std::vector<std::string> out_paths;
  for (int p = 0; p < procs; ++p) {
    const std::string out_path = "/tmp/nettag_soak_" +
                                 std::to_string(::getpid()) + "_" +
                                 std::to_string(p) + ".txt";
    out_paths.push_back(out_path);
    const std::string proc_s = std::to_string(p);
    const std::string conns_s = std::to_string(conns);
    const std::string reqs_s = std::to_string(reqs);
    const pid_t pid = ::fork();
    if (pid < 0) return false;
    if (pid == 0) {
      // Child: exec immediately (the parent is multi-threaded; nothing but
      // async-signal-safe calls are allowed between fork and exec).
      const char* cargv[] = {self_exe.c_str(), "--client",   spec.c_str(),
                             proc_s.c_str(),  conns_s.c_str(), reqs_s.c_str(),
                             workload,        out_path.c_str(), nullptr};
      ::execv(self_exe.c_str(), const_cast<char**>(cargv));
      _exit(127);
    }
    pids.push_back(pid);
  }
  bool all_ok = true;
  for (const pid_t pid : pids) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) all_ok = false;
  }
  for (const std::string& path : out_paths) {
    std::ifstream in(path);
    std::uint64_t ok = 0, shed = 0, errors = 0;
    if (in >> ok >> shed >> errors) {
      result->requests += ok + shed;
      result->shed += shed;
      result->protocol_errors += errors;
    } else {
      all_ok = false;
    }
    std::remove(path.c_str());
  }
  return all_ok;
}

/// Reads the single_client qps out of the committed throughput bench JSON;
/// falls back to the last recorded value when the file is absent.
double reference_single_client_qps() {
  std::ifstream in("BENCH_serve_throughput.json");
  if (!in) return 1146.67;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  serve::Json j;
  std::string error;
  if (!serve::Json::parse(text, &j, &error)) return 1146.67;
  const serve::Json* runs = j.find("runs");
  if (runs == nullptr || !runs->is_array()) return 1146.67;
  for (const serve::Json& run : runs->items()) {
    if (run.find("mode") != nullptr &&
        run.find("mode")->as_string() == "single_client" &&
        run.find("qps") != nullptr) {
      return run.find("qps")->as_number();
    }
  }
  return 1146.67;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && !std::strcmp(argv[1], "--client")) {
    return run_client_mode(argc, argv);
  }

  char exe_buf[4096];
  const ssize_t exe_len =
      ::readlink("/proc/self/exe", exe_buf, sizeof(exe_buf) - 1);
  if (exe_len <= 0) {
    std::fprintf(stderr, "bench_serve_soak: cannot resolve /proc/self/exe\n");
    return 2;
  }
  const std::string self_exe(exe_buf, static_cast<std::size_t>(exe_len));

  // Small model, brief pre-training: this bench measures the transport and
  // sharding layers, not model quality.
  PretrainOptions po;
  po.expr_steps = 8;
  po.tag_steps = 6;
  po.aux_steps = 0;
  po.max_expressions = 160;
  po.max_cones = 16;
  po.objective_align = false;
  NetTagConfig mc;
  mc.expr_llm = TextEncoderConfig::tiny();
  bench::Setup setup = bench::make_setup(1, po, mc);

  // The forced-shed arm needs a second server with identical weights;
  // round-trip through a checkpoint rather than pre-training twice.
  const std::string ckpt = "/tmp/nettag_soak_ckpt";
  save_checkpoint(*setup.model, ckpt);

  const int kProcs = 24, kConns = 8, kReqs = 60;
  const int kClients = kProcs * kConns;
  std::vector<ArmResult> results;
  bool spawn_ok = true;

  // --- arm 1+2: single client, then the soak, against one shared daemon ---
  {
    serve::ServerConfig sc;
    sc.cache_entries = 512;
    const std::size_t shards = 4;
    setup.model->text_cache().set_partitions(shards);
    serve::Server server(sc, std::move(setup.model));
    net::DaemonConfig dc;
    dc.shards = shards;
    dc.queue_depth = 64;
    dc.cache_entries = sc.cache_entries;
    dc.poll_interval_ms = 20;
    std::string error;
    const std::string sock =
        "/tmp/nettag_soak_" + std::to_string(::getpid()) + ".sock";
    if (!cli::parse_listen_address(("unix:" + sock).c_str(), &dc.listen,
                                   &error)) {
      std::fprintf(stderr, "bench_serve_soak: %s\n", error.c_str());
      return 2;
    }
    net::Daemon daemon(server, dc);
    if (!daemon.start(&error)) {
      std::fprintf(stderr, "bench_serve_soak: %s\n", error.c_str());
      return 2;
    }
    std::atomic<bool> stop{false};
    std::thread runner([&] { daemon.run(&stop); });

    ArmResult single;
    single.mode = "single_client";
    {
      Timer t;
      spawn_ok &= run_clients(self_exe, "unix:" + sock, 1, 1, 400, "zipf",
                              &single);
      single.seconds = t.seconds();
    }
    results.push_back(single);

    ArmResult soak;
    soak.mode = "soak_" + std::to_string(kClients) + "_clients";
    {
      Timer t;
      spawn_ok &= run_clients(self_exe, "unix:" + sock, kProcs, kConns, kReqs,
                              "zipf", &soak);
      soak.seconds = t.seconds();
    }
    results.push_back(soak);

    stop.store(true);
    runner.join();
  }

  // --- arm 3: forced shed on a starved daemon -----------------------------
  {
    serve::ServerConfig sc;
    sc.cache_entries = 64;
    serve::Server server(sc, load_checkpoint(ckpt));
    net::DaemonConfig dc;
    dc.shards = 1;
    dc.queue_depth = 1;
    dc.cache_entries = sc.cache_entries;
    dc.poll_interval_ms = 20;
    std::string error;
    const std::string sock =
        "/tmp/nettag_soak_shed_" + std::to_string(::getpid()) + ".sock";
    if (!cli::parse_listen_address(("unix:" + sock).c_str(), &dc.listen,
                                   &error)) {
      std::fprintf(stderr, "bench_serve_soak: %s\n", error.c_str());
      return 2;
    }
    net::Daemon daemon(server, dc);
    if (!daemon.start(&error)) {
      std::fprintf(stderr, "bench_serve_soak: %s\n", error.c_str());
      return 2;
    }
    std::atomic<bool> stop{false};
    std::thread runner([&] { daemon.run(&stop); });

    ArmResult shed;
    shed.mode = "forced_shed";
    {
      Timer t;
      spawn_ok &= run_clients(self_exe, "unix:" + sock, 8, 4, 8, "distinct",
                              &shed);
      shed.seconds = t.seconds();
    }
    results.push_back(shed);

    // Cross-check: the daemon's own shard counters saw the shed requests.
    std::uint64_t daemon_shed = 0;
    for (const auto& s : daemon.shard_pool()->stats()) daemon_shed += s.shed;
    if (daemon_shed != shed.shed) {
      std::fprintf(stderr,
                   "bench_serve_soak: daemon shed counter %llu != client "
                   "too_busy count %llu\n",
                   static_cast<unsigned long long>(daemon_shed),
                   static_cast<unsigned long long>(shed.shed));
      spawn_ok = false;
    }
    stop.store(true);
    runner.join();
  }

  for (const char* suffix : {".ckpt", ".exprllm.bin", ".tagformer.bin"}) {
    std::remove((ckpt + suffix).c_str());
  }

  TextTable table;
  table.set_header({"Mode", "Requests", "Seconds", "QPS", "Shed", "Errors"});
  for (const ArmResult& r : results) {
    char sec[32], qps[32];
    std::snprintf(sec, sizeof(sec), "%.3f", r.seconds);
    std::snprintf(qps, sizeof(qps), "%.1f", r.qps());
    table.add_row({r.mode, std::to_string(r.requests), sec, qps,
                   std::to_string(r.shed), std::to_string(r.protocol_errors)});
  }
  table.print(std::cout);

  const double reference = reference_single_client_qps();
  const std::uint64_t total_errors = results[0].protocol_errors +
                                     results[1].protocol_errors +
                                     results[2].protocol_errors;
  const bool multi_exceeds = results[1].qps() >= reference;
  const bool shed_observed = results[2].shed > 0;
  const bool pass =
      spawn_ok && total_errors == 0 && multi_exceeds && shed_observed;
  std::cout << "# " << kClients << " concurrent clients, "
            << results[1].requests << " soak requests, " << total_errors
            << " protocol errors\n"
            << "# soak qps " << results[1].qps()
            << (multi_exceeds ? " exceeds" : " DOES NOT exceed")
            << " in-process single-client reference " << reference << "\n"
            << "# forced-shed arm shed " << results[2].shed
            << " requests via too_busy (connections never dropped)\n";

  std::ofstream json("BENCH_serve_soak.json");
  json << "{\n  \"bench\": \"serve_soak\",\n  \"simd\": \""
       << simd_backend_name() << "\",\n  \"concurrent_clients\": " << kClients
       << ",\n  \"distinct_netlists\": " << kDistinct
       << ",\n  \"zipf_alpha\": " << kZipfAlpha << ",\n  \"runs\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ArmResult& r = results[i];
    json << (i ? "," : "") << "\n    {\"mode\": \"" << r.mode
         << "\", \"requests\": " << r.requests << ", \"seconds\": "
         << r.seconds << ", \"qps\": " << r.qps() << ", \"shed\": " << r.shed
         << ", \"protocol_errors\": " << r.protocol_errors << "}";
  }
  json << "\n  ],\n  \"reference_single_client_qps\": " << reference
       << ",\n  \"multi_client_qps_exceeds_reference\": "
       << (multi_exceeds ? "true" : "false")
       << ",\n  \"shed_observed\": " << (shed_observed ? "true" : "false")
       << ",\n  \"zero_protocol_errors\": "
       << (total_errors == 0 ? "true" : "false") << ",\n  \"pass\": "
       << (pass ? "true" : "false") << "\n}\n";
  std::cout << "# JSON written to BENCH_serve_soak.json\n";
  return pass ? 0 : 1;
}
