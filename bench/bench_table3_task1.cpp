// Reproduces Table III: Task 1 — combinational gate function identification,
// NetTAG vs the GNN-RE-style supervised baseline, per held-out design.
//
// Paper reference (Table III): GNN-RE avg Acc 83 / Prec 86 / Rec 83 / F1 82;
// NetTAG avg 97 / 97 / 97 / 96 — NetTAG wins on every design. At our scale
// the absolute numbers are lower; the reproduced claim is the *ordering*
// (NetTAG > GNN-RE on average and on most designs).
#include <iostream>

#include "common.hpp"
#include "tasks/task1.hpp"

using namespace nettag;

int main() {
  bench::Setup s = bench::make_setup();
  Task1Options options;
  Task1Result res = run_task1(*s.model, s.corpus, options, s.rng);

  std::cout << "== Table III: Task1 combinational gate function "
               "identification ==\n";
  TextTable table;
  table.set_header({"Design", "GNNRE Acc", "Prec", "Rec", "F1",  //
                    "NetTAG Acc", "Prec", "Rec", "F1"});
  auto add = [&](const std::string& name, const ClassificationReport& g,
                 const ClassificationReport& n) {
    table.add_row({name, pct(100 * g.accuracy), pct(100 * g.precision),
                   pct(100 * g.recall), pct(100 * g.f1), pct(100 * n.accuracy),
                   pct(100 * n.precision), pct(100 * n.recall), pct(100 * n.f1)});
  };
  for (const Task1Row& row : res.rows) add(row.design, row.gnnre, row.nettag);
  table.add_separator();
  add("Avg.", res.gnnre_avg, res.nettag_avg);
  table.print(std::cout);
  std::cout << "# paper: GNN-RE avg acc 83, NetTAG avg acc 97 (NetTAG wins)\n"
            << "# reproduced ordering: NetTAG "
            << (res.nettag_avg.accuracy > res.gnnre_avg.accuracy ? "WINS"
                                                                 : "LOSES")
            << " on average accuracy ("
            << pct(100 * res.nettag_avg.accuracy) << " vs "
            << pct(100 * res.gnnre_avg.accuracy) << ")\n";
  return 0;
}
