// Reproduces Fig. 6: ablation study — re-pretrains NetTAG with each
// component removed and reports all four downstream tasks.
//
// Paper reference (directional):
//  * w/o text attributes  -> largest drop, especially on functional tasks;
//  * w/o obj #1 (expr CL) -> biggest hit on functional tasks;
//  * w/o #2.1 / #2.2      -> hurts both task families;
//  * w/o #2.3 (size)      -> strongest effect on physical tasks;
//  * w/o cross-stage align-> notable drop on all four tasks.
#include <iostream>

#include "common.hpp"
#include "tasks/task1.hpp"
#include "tasks/task2.hpp"
#include "tasks/task3.hpp"
#include "tasks/task4.hpp"

using namespace nettag;

namespace {

struct ArmScores {
  double t1_acc = 0;   // higher better
  double t2_acc = 0;   // higher better
  double t3_r = 0;     // higher better
  double t4_mape = 0;  // lower better
};

constexpr int kSeeds = 3;  ///< arms are averaged over seeds to tame variance

ArmScores run_arm(const char* name, const NetTagConfig& config,
                  const PretrainOptions& pretrain_options) {
  ArmScores scores;
  for (int seed = 0; seed < kSeeds; ++seed) {
    std::printf("-- arm: %s (seed %d/%d)\n", name, seed + 1, kSeeds);
    bench::Setup s = bench::make_setup(5, pretrain_options, config,
                                       20250705 + 131 * seed);
    // Ablation compares NetTAG arms; skip (re)training the task baselines.
    {
      Task1Options o;
      o.gnn_steps = 1;
      scores.t1_acc += run_task1(*s.model, s.corpus, o, s.rng).nettag_avg.accuracy;
    }
    {
      Task2Options o;
      o.gnn_steps = 1;
      scores.t2_acc +=
          run_task2(*s.model, s.corpus, o, s.rng).nettag_avg.balanced_accuracy;
    }
    {
      Task3Options o;
      o.gnn_steps = 1;
      scores.t3_r += run_task3(*s.model, s.corpus, o, s.rng).nettag_avg.pearson_r;
    }
    {
      Task4Options o;
      o.gnn_steps = 1;
      const Task4Result r = run_task4(*s.model, s.corpus, o, s.rng);
      scores.t4_mape += (r.area_wo_opt.nettag.mape + r.area_w_opt.nettag.mape +
                         r.power_wo_opt.nettag.mape + r.power_w_opt.nettag.mape) /
                        4.0;
    }
  }
  scores.t1_acc /= kSeeds;
  scores.t2_acc /= kSeeds;
  scores.t3_r /= kSeeds;
  scores.t4_mape /= kSeeds;
  return scores;
}

}  // namespace

int main() {
  std::cout << "== Fig. 6: ablation study (NetTAG arms only) ==\n";

  struct Arm {
    const char* name;
    NetTagConfig config;
    PretrainOptions pretrain;
  };
  // Reduced pre-training budget so seven full arms stay tractable.
  PretrainOptions base;
  base.expr_steps = 140;
  base.tag_steps = 110;
  base.aux_steps = 40;
  base.max_cones = 120;

  std::vector<Arm> arms;
  arms.push_back({"full NetTAG", {}, base});
  {
    Arm a{"w/o text attributes", {}, base};
    a.config.use_text_attributes = false;
    arms.push_back(a);
  }
  {
    Arm a{"w/o #1 expr contrastive", {}, base};
    a.pretrain.objective_expr_cl = false;
    arms.push_back(a);
  }
  {
    Arm a{"w/o #2.1 masked gate", {}, base};
    a.pretrain.objective_mask = false;
    arms.push_back(a);
  }
  {
    Arm a{"w/o #2.2 graph contrastive", {}, base};
    a.pretrain.objective_graph_cl = false;
    arms.push_back(a);
  }
  {
    Arm a{"w/o #2.3 size prediction", {}, base};
    a.pretrain.objective_size = false;
    arms.push_back(a);
  }
  {
    Arm a{"w/o cross-stage align", {}, base};
    a.pretrain.objective_align = false;
    arms.push_back(a);
  }

  TextTable table;
  table.set_header({"Arm", "T1 Acc(%)", "T2 BalAcc(%)", "T3 R",
                    "T4 MAPE(%) (lower=better)"});
  ArmScores full;
  for (std::size_t i = 0; i < arms.size(); ++i) {
    const ArmScores sc = run_arm(arms[i].name, arms[i].config, arms[i].pretrain);
    if (i == 0) full = sc;
    table.add_row({arms[i].name, pct(100 * sc.t1_acc), pct(100 * sc.t2_acc),
                   fmt(sc.t3_r, 2), pct(sc.t4_mape)});
  }
  table.print(std::cout);
  std::cout << "# paper shape: every ablated arm is worse than full NetTAG "
               "on at least one task family\n";
  return 0;
}
