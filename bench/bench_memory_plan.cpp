// Memory-planner benchmark: per-step heap allocations and wall time of the
// Task 1 (functionality classification) training loop with the static arena
// planner off vs on.
//
// The loop mirrors ClassifierHead::fit_impl — Mlp forward, cross-entropy,
// backward, Adam — with one PlanScope per step under a fixed shape
// signature. With planning off every op output, gradient, and op-internal
// temporary is a fresh heap vector; with planning on the first (recording)
// step plans them all into one arena slab and every later step replays at
// the planned offsets, leaving only the minibatch gather on the heap.
//
// Writes BENCH_memory_plan.json (schema documented in docs/PERFORMANCE.md)
// and exits nonzero if the planned run is not bit-identical to the heap run
// or the per-step allocation reduction falls below the 10x acceptance bar.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "nn/layers.hpp"
#include "nn/tape.hpp"
#include "nn/tensor.hpp"
#include "tasks/finetune.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace nettag;

namespace {

constexpr int kSteps = 200;     // measured steps (after the recording step)
constexpr int kBatch = 64;
constexpr int kInDim = 32;
constexpr int kHidden = 96;
constexpr int kClasses = 4;
constexpr int kRows = 512;

struct RunResult {
  std::vector<float> losses;
  unsigned long long heap_allocs = 0;     // delta over the measured steps
  unsigned long long arena_served = 0;    // delta over the measured steps
  double seconds = 0;
  plan::Stats stats;                      // snapshot at the end of the run
};

void toy_task1(Mat* x, std::vector<int>* y) {
  Rng rng(0xda7a);
  *x = Mat(kRows, kInDim);
  y->clear();
  for (int i = 0; i < x->rows; ++i) {
    float s = 0.f;
    for (int j = 0; j < x->cols; ++j) {
      x->at(i, j) = static_cast<float>(rng.uniform(-1.0, 1.0));
      s += x->at(i, j) * (j % 2 == 0 ? 1.f : -1.f);
    }
    y->push_back(((s > 0.f) ? 1 : 0) + 2 * (x->at(i, 0) > 0.f ? 1 : 0));
  }
}

RunResult run_loop(bool plan_on) {
  plan::reset_for_tests();
  plan::set_planning_enabled(plan_on);
  Mat x;
  std::vector<int> y;
  toy_task1(&x, &y);
  Rng rng(0x5eed);
  Mlp mlp(kInDim, kHidden, kClasses, rng);
  Adam opt(mlp.params(), 3e-3f);
  const std::string signature = "bench|task1|" + std::to_string(kBatch) + "|" +
                                std::to_string(kInDim) + "|" +
                                std::to_string(kClasses);
  RunResult res;
  auto one_step = [&]() {
    plan::PlanScope scope(signature);
    std::vector<int> idx;
    std::vector<int> labels;
    for (int b = 0; b < kBatch; ++b) {
      const int i = static_cast<int>(rng.index(static_cast<std::size_t>(kRows)));
      idx.push_back(i);
      labels.push_back(y[static_cast<std::size_t>(i)]);
    }
    Tensor logits = mlp.forward(make_tensor(take_rows(x, idx), false));
    Tensor loss = cross_entropy(logits, labels);
    backward(loss);
    opt.step();
    res.losses.push_back(loss->value.v[0]);
  };

  one_step();  // warmup: with planning on this is the recording step
  const plan::Stats before = plan::stats_snapshot();
  Timer t;
  for (int step = 0; step < kSteps; ++step) one_step();
  res.seconds = t.seconds();
  const plan::Stats after = plan::stats_snapshot();
  res.heap_allocs = after.heap_mat_allocs - before.heap_mat_allocs;
  res.arena_served = after.mallocs_avoided - before.mallocs_avoided;
  res.stats = after;
  return res;
}

}  // namespace

int main() {
  ThreadPool::instance().set_width(1);
  const RunResult off = run_loop(false);
  const RunResult on = run_loop(true);

  const bool identical = off.losses == on.losses;
  const double per_step_off =
      static_cast<double>(off.heap_allocs) / kSteps;
  const double per_step_on = static_cast<double>(on.heap_allocs) / kSteps;
  const double reduction =
      per_step_on > 0 ? per_step_off / per_step_on
                      : static_cast<double>(off.heap_allocs);

  std::printf("== memory planner: Task 1 training loop (%d steps, width 1) ==\n",
              kSteps);
  std::printf("plan off: %.1f heap allocs/step, %.3fs\n", per_step_off,
              off.seconds);
  std::printf("plan on:  %.1f heap allocs/step, %.3fs, %.1f arena "
              "buffers/step, slab %llu bytes\n",
              per_step_on, on.seconds,
              static_cast<double>(on.arena_served) / kSteps,
              on.stats.slab_bytes);
  std::printf("reduction: %.1fx   loss trajectory bit-identical: %s\n",
              reduction, identical ? "yes" : "NO");

  std::ofstream json("BENCH_memory_plan.json");
  json << "{\n"
       << "  \"bench\": \"memory_plan\",\n"
       << "  \"loop\": {\"task\": \"task1_classifier\", \"steps\": " << kSteps
       << ", \"batch\": " << kBatch << ", \"in_dim\": " << kInDim
       << ", \"hidden\": " << kHidden << ", \"classes\": " << kClasses
       << ", \"threads\": 1},\n";
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "  \"plan_off\": {\"heap_allocs_per_step\": %.2f, "
                "\"seconds\": %.3f},\n",
                per_step_off, off.seconds);
  json << buf;
  std::snprintf(buf, sizeof buf,
                "  \"plan_on\": {\"heap_allocs_per_step\": %.2f, "
                "\"arena_buffers_per_step\": %.2f, \"seconds\": %.3f,\n",
                per_step_on, static_cast<double>(on.arena_served) / kSteps,
                on.seconds);
  json << buf;
  std::snprintf(
      buf, sizeof buf,
      "    \"slab_bytes\": %llu, \"buffers_planned\": %llu, "
      "\"buffers_coalesced\": %llu,\n",
      on.stats.slab_bytes, on.stats.buffers_planned,
      on.stats.buffers_coalesced);
  json << buf;
  std::snprintf(buf, sizeof buf,
                "    \"plans_installed\": %llu, \"replays\": %llu, "
                "\"divergences\": %llu, \"verifier_rejects\": %llu},\n",
                on.stats.plans_installed, on.stats.replays,
                on.stats.divergences, on.stats.verifier_rejects);
  json << buf;
  std::snprintf(buf, sizeof buf,
                "  \"heap_alloc_reduction_x\": %.1f,\n  "
                "\"loss_bit_identical\": %s\n}\n",
                reduction, identical ? "true" : "false");
  json << buf;
  json.close();
  std::printf("# JSON written to BENCH_memory_plan.json\n");

  const bool pass = identical && reduction >= 10.0 &&
                    on.stats.divergences == 0 && on.stats.verifier_rejects == 0;
  if (!pass) std::printf("# FAILED acceptance (>=10x reduction, bit-identity)\n");
  return pass ? 0 : 1;
}
