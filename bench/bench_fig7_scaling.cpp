// Reproduces Fig. 7: performance scaling with (a) ExprLLM model size and
// (b) pre-training data size.
//
// Paper reference: scaling the ExprLLM backbone from BERT-110M through
// Llama-1.3B to Llama-8B improves all four tasks monotonically, and so does
// growing the pre-training dataset from 25% to 100%. Our tiers are
// tiny/small/base TextEncoder configs and 25/50/75/100% of the expression +
// cone datasets.
#include <iostream>

#include "common.hpp"
#include "tasks/task1.hpp"
#include "tasks/task2.hpp"
#include "tasks/task3.hpp"
#include "tasks/task4.hpp"

using namespace nettag;

namespace {

struct Scores {
  double t1 = 0, t2 = 0, t3 = 0, t4_mape = 0;
};

constexpr int kSeeds = 3;  ///< arms averaged over seeds to tame variance

Scores run_tasks(bench::Setup& s) {
  Scores sc;
  {
    Task1Options o;
    o.gnn_steps = 1;
    sc.t1 = run_task1(*s.model, s.corpus, o, s.rng).nettag_avg.accuracy;
  }
  {
    Task2Options o;
    o.gnn_steps = 1;
    sc.t2 = run_task2(*s.model, s.corpus, o, s.rng).nettag_avg.balanced_accuracy;
  }
  {
    Task3Options o;
    o.gnn_steps = 1;
    sc.t3 = run_task3(*s.model, s.corpus, o, s.rng).nettag_avg.pearson_r;
  }
  {
    Task4Options o;
    o.gnn_steps = 1;
    const Task4Result r = run_task4(*s.model, s.corpus, o, s.rng);
    sc.t4_mape = (r.area_wo_opt.nettag.mape + r.area_w_opt.nettag.mape +
                  r.power_wo_opt.nettag.mape + r.power_w_opt.nettag.mape) /
                 4.0;
  }
  return sc;
}

template <typename MakeSetup>
Scores run_arm_avg(const MakeSetup& make) {
  Scores avg;
  for (int seed = 0; seed < kSeeds; ++seed) {
    bench::Setup s = make(20250705 + 131 * seed);
    const Scores sc = run_tasks(s);
    avg.t1 += sc.t1;
    avg.t2 += sc.t2;
    avg.t3 += sc.t3;
    avg.t4_mape += sc.t4_mape;
  }
  avg.t1 /= kSeeds;
  avg.t2 /= kSeeds;
  avg.t3 /= kSeeds;
  avg.t4_mape /= kSeeds;
  return avg;
}

}  // namespace

int main() {
  PretrainOptions base;
  base.expr_steps = 140;
  base.tag_steps = 110;
  base.aux_steps = 40;

  std::cout << "== Fig. 7 (a): scaling ExprLLM model size ==\n";
  {
    TextTable table;
    table.set_header({"ExprLLM tier", "Params", "T1 Acc(%)", "T2 BalAcc(%)",
                      "T3 R", "T4 MAPE(%)"});
    struct Tier {
      const char* name;
      TextEncoderConfig config;
    };
    const Tier tiers[] = {
        {"tiny  (BERT-110M analog)", TextEncoderConfig::tiny()},
        {"small (Llama-1.3B analog)", TextEncoderConfig::small()},
        {"base  (Llama-8B analog)", TextEncoderConfig::base()},
    };
    for (const Tier& tier : tiers) {
      std::printf("-- tier: %s\n", tier.name);
      NetTagConfig cfg;
      cfg.expr_llm = tier.config;
      std::size_t params = 0;
      const Scores sc = run_arm_avg([&](std::uint64_t seed) {
        bench::Setup s = bench::make_setup(5, base, cfg, seed);
        params = s.model->expr_llm().num_params();
        return s;
      });
      table.add_row({tier.name, std::to_string(params), pct(100 * sc.t1),
                     pct(100 * sc.t2), fmt(sc.t3, 2), pct(sc.t4_mape)});
    }
    table.print(std::cout);
  }

  std::cout << "== Fig. 7 (b): scaling pre-training data size ==\n";
  {
    TextTable table;
    table.set_header({"Data fraction", "T1 Acc(%)", "T2 BalAcc(%)", "T3 R",
                      "T4 MAPE(%)"});
    for (double frac : {0.25, 0.5, 0.75, 1.0}) {
      std::printf("-- data fraction: %.0f%%\n", 100 * frac);
      PretrainOptions po = base;
      po.max_expressions =
          static_cast<std::size_t>(static_cast<double>(base.max_expressions) * frac);
      po.max_cones =
          static_cast<std::size_t>(static_cast<double>(base.max_cones) * frac);
      // The paper's pre-training budget is epoch-based (1 epoch ExprLLM,
      // 50 epochs TAGFormer), so steps scale with the dataset — otherwise
      // smaller fractions get *more* epochs and the axis is confounded.
      po.expr_steps = static_cast<int>(base.expr_steps * frac);
      po.tag_steps = static_cast<int>(base.tag_steps * frac);
      const Scores sc = run_arm_avg(
          [&](std::uint64_t seed) { return bench::make_setup(5, po, {}, seed); });
      table.add_row({pct(100 * frac) + "%", pct(100 * sc.t1), pct(100 * sc.t2),
                     fmt(sc.t3, 2), pct(sc.t4_mape)});
    }
    table.print(std::cout);
  }
  std::cout << "# paper shape: larger model tiers and more data both trend "
               "upward across tasks\n";
  return 0;
}
