// Reproduces Fig. 7: performance scaling with (a) ExprLLM model size,
// (b) pre-training data size, and (c) corpus scale via the streaming shard
// pipeline (hierarchical repository-scale designs, out-of-core shards,
// pretrain_streaming).
//
// Paper reference: scaling the ExprLLM backbone from BERT-110M through
// Llama-1.3B to Llama-8B improves all four tasks monotonically, and so does
// growing the pre-training dataset from 25% to 100%. Our tiers are
// tiny/small/base TextEncoder configs and 25/50/75/100% of the expression +
// cone datasets; arm (c) grows the *designs themselves* from flat blocks to
// hierarchical compositions ~10x their gate count (core/corpus_stream.hpp).
//
// Writes a machine-readable snapshot BENCH_fig7_scaling.json to the working
// directory.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common.hpp"
#include "core/corpus_stream.hpp"
#include "tasks/task1.hpp"
#include "tasks/task2.hpp"
#include "tasks/task3.hpp"
#include "tasks/task4.hpp"

using namespace nettag;

namespace {

struct Scores {
  double t1 = 0, t2 = 0, t3 = 0, t4_mape = 0;
};

constexpr int kSeeds = 3;  ///< arms averaged over seeds to tame variance

Scores run_tasks(bench::Setup& s) {
  Scores sc;
  {
    Task1Options o;
    o.gnn_steps = 1;
    sc.t1 = run_task1(*s.model, s.corpus, o, s.rng).nettag_avg.accuracy;
  }
  {
    Task2Options o;
    o.gnn_steps = 1;
    sc.t2 = run_task2(*s.model, s.corpus, o, s.rng).nettag_avg.balanced_accuracy;
  }
  {
    Task3Options o;
    o.gnn_steps = 1;
    sc.t3 = run_task3(*s.model, s.corpus, o, s.rng).nettag_avg.pearson_r;
  }
  {
    Task4Options o;
    o.gnn_steps = 1;
    const Task4Result r = run_task4(*s.model, s.corpus, o, s.rng);
    sc.t4_mape = (r.area_wo_opt.nettag.mape + r.area_w_opt.nettag.mape +
                  r.power_wo_opt.nettag.mape + r.power_w_opt.nettag.mape) /
                 4.0;
  }
  return sc;
}

template <typename MakeSetup>
Scores run_arm_avg(const MakeSetup& make) {
  Scores avg;
  for (int seed = 0; seed < kSeeds; ++seed) {
    bench::Setup s = make(20250705 + 131 * seed);
    const Scores sc = run_tasks(s);
    avg.t1 += sc.t1;
    avg.t2 += sc.t2;
    avg.t3 += sc.t3;
    avg.t4_mape += sc.t4_mape;
  }
  avg.t1 /= kSeeds;
  avg.t2 /= kSeeds;
  avg.t3 /= kSeeds;
  avg.t4_mape /= kSeeds;
  return avg;
}

/// One corpus-scale arm: streams a sharded corpus to disk, pre-trains
/// through the shard reader, then evaluates the four tasks on the
/// materialized corpus. Accumulates corpus statistics alongside the scores.
struct CorpusScaleResult {
  Scores scores;
  double designs = 0, gates = 0, cones = 0, expressions = 0, shard_bytes = 0;
  double shards = 0;
};

CorpusScaleResult run_corpus_scale_arm(const std::string& tag,
                                       bool hierarchical,
                                       int designs_per_family,
                                       const PretrainOptions& base) {
  namespace fs = std::filesystem;
  CorpusScaleResult out;
  for (int s = 0; s < kSeeds; ++s) {
    const std::uint64_t seed = 20250705 + 131 * static_cast<std::uint64_t>(s);
    const fs::path dir =
        fs::temp_directory_path() / ("nettag_fig7c_" + tag + std::to_string(s));
    fs::remove_all(dir);

    StreamOptions so;
    so.hierarchical = hierarchical;
    so.designs_per_family = designs_per_family;
    so.designs_per_shard = 4;
    double bytes = 0;
    build_corpus_stream(dir.string(), so, seed,
                        [&](const ShardStats& st) {
                          bytes += static_cast<double>(st.bytes);
                        });

    bench::Setup setup;
    setup.rng = Rng(seed);
    const ShardedCorpus sharded(dir.string());
    setup.model = std::make_unique<NetTag>(NetTagConfig{}, seed ^ 0xabcd);
    Timer t;
    setup.pretrain_report =
        pretrain_streaming(*setup.model, sharded, base, setup.rng);
    std::printf(
        "# pretrain (streamed, %zu shards): expr loss %.3f -> %.3f, tag loss "
        "%.3f -> %.3f, %.1fs\n",
        sharded.num_shards(), setup.pretrain_report.expr_loss_first,
        setup.pretrain_report.expr_loss_last,
        setup.pretrain_report.tag_loss_first,
        setup.pretrain_report.tag_loss_last, t.seconds());

    // Materialize the corpus for task evaluation (the bench host has the
    // RAM; training above did not need it).
    setup.corpus.families = sharded.families();
    for (std::size_t i = 0; i < sharded.num_shards(); ++i) {
      ShardedCorpus::Shard shard = sharded.load(i);
      for (DesignSample& d : shard.corpus.designs) {
        out.gates += static_cast<double>(d.gen.netlist.size());
        out.cones += static_cast<double>(d.cones.size());
        setup.corpus.designs.push_back(std::move(d));
      }
      for (const auto& per_cone : shard.exprs) {
        for (const auto& exprs : per_cone) {
          out.expressions += static_cast<double>(exprs.size());
        }
      }
    }
    out.designs += static_cast<double>(setup.corpus.designs.size());
    out.shards += static_cast<double>(sharded.num_shards());
    out.shard_bytes += bytes;
    fs::remove_all(dir);

    const Scores sc = run_tasks(setup);
    out.scores.t1 += sc.t1;
    out.scores.t2 += sc.t2;
    out.scores.t3 += sc.t3;
    out.scores.t4_mape += sc.t4_mape;
  }
  out.scores.t1 /= kSeeds;
  out.scores.t2 /= kSeeds;
  out.scores.t3 /= kSeeds;
  out.scores.t4_mape /= kSeeds;
  out.designs /= kSeeds;
  out.gates /= kSeeds;
  out.cones /= kSeeds;
  out.expressions /= kSeeds;
  out.shard_bytes /= kSeeds;
  out.shards /= kSeeds;
  return out;
}

std::string json_scores(const Scores& sc) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "\"t1_acc\": %.4f, \"t2_bal_acc\": %.4f, \"t3_r\": %.4f, "
                "\"t4_mape\": %.4f",
                sc.t1, sc.t2, sc.t3, sc.t4_mape);
  return buf;
}

}  // namespace

int main() {
  PretrainOptions base;
  base.expr_steps = 140;
  base.tag_steps = 110;
  base.aux_steps = 40;

  std::ostringstream json_a, json_b, json_c;

  std::cout << "== Fig. 7 (a): scaling ExprLLM model size ==\n";
  {
    TextTable table;
    table.set_header({"ExprLLM tier", "Params", "T1 Acc(%)", "T2 BalAcc(%)",
                      "T3 R", "T4 MAPE(%)"});
    struct Tier {
      const char* name;
      TextEncoderConfig config;
    };
    const Tier tiers[] = {
        {"tiny  (BERT-110M analog)", TextEncoderConfig::tiny()},
        {"small (Llama-1.3B analog)", TextEncoderConfig::small()},
        {"base  (Llama-8B analog)", TextEncoderConfig::base()},
    };
    for (const Tier& tier : tiers) {
      std::printf("-- tier: %s\n", tier.name);
      NetTagConfig cfg;
      cfg.expr_llm = tier.config;
      std::size_t params = 0;
      const Scores sc = run_arm_avg([&](std::uint64_t seed) {
        bench::Setup s = bench::make_setup(5, base, cfg, seed);
        params = s.model->expr_llm().num_params();
        return s;
      });
      table.add_row({tier.name, std::to_string(params), pct(100 * sc.t1),
                     pct(100 * sc.t2), fmt(sc.t3, 2), pct(sc.t4_mape)});
      json_a << (json_a.tellp() > 0 ? ",\n" : "") << "    {\"tier\": \""
             << tier.name << "\", \"params\": " << params << ", "
             << json_scores(sc) << "}";
    }
    table.print(std::cout);
  }

  std::cout << "== Fig. 7 (b): scaling pre-training data size ==\n";
  {
    TextTable table;
    table.set_header({"Data fraction", "T1 Acc(%)", "T2 BalAcc(%)", "T3 R",
                      "T4 MAPE(%)"});
    for (double frac : {0.25, 0.5, 0.75, 1.0}) {
      std::printf("-- data fraction: %.0f%%\n", 100 * frac);
      PretrainOptions po = base;
      po.max_expressions =
          static_cast<std::size_t>(static_cast<double>(base.max_expressions) * frac);
      po.max_cones =
          static_cast<std::size_t>(static_cast<double>(base.max_cones) * frac);
      // The paper's pre-training budget is epoch-based (1 epoch ExprLLM,
      // 50 epochs TAGFormer), so steps scale with the dataset — otherwise
      // smaller fractions get *more* epochs and the axis is confounded.
      po.expr_steps = static_cast<int>(base.expr_steps * frac);
      po.tag_steps = static_cast<int>(base.tag_steps * frac);
      const Scores sc = run_arm_avg(
          [&](std::uint64_t seed) { return bench::make_setup(5, po, {}, seed); });
      table.add_row({pct(100 * frac) + "%", pct(100 * sc.t1), pct(100 * sc.t2),
                     fmt(sc.t3, 2), pct(sc.t4_mape)});
      json_b << (json_b.tellp() > 0 ? ",\n" : "") << "    {\"fraction\": "
             << frac << ", " << json_scores(sc) << "}";
    }
    table.print(std::cout);
  }

  std::cout << "== Fig. 7 (c): scaling corpus scale (streaming shards) ==\n";
  {
    TextTable table;
    table.set_header({"Corpus", "Designs", "Gates", "Cones", "Exprs",
                      "Shard MB", "T1 Acc(%)", "T2 BalAcc(%)", "T3 R",
                      "T4 MAPE(%)"});
    struct Arm {
      const char* name;
      bool hierarchical;
      int designs_per_family;
    };
    // Flat blocks at the in-memory default vs hierarchical compositions
    // ~10x their gate count — the repository-scale axis the streaming
    // pipeline unlocks (the corpus never sits in RAM during training).
    const Arm arms[] = {
        {"flat 1x", false, 5},
        {"hier ~10x", true, 5},
    };
    for (const Arm& arm : arms) {
      std::printf("-- corpus: %s\n", arm.name);
      const CorpusScaleResult r = run_corpus_scale_arm(
          arm.hierarchical ? "hier" : "flat", arm.hierarchical,
          arm.designs_per_family, base);
      table.add_row({arm.name, fmt(r.designs, 0), fmt(r.gates, 0),
                     fmt(r.cones, 0), fmt(r.expressions, 0),
                     fmt(r.shard_bytes / (1024.0 * 1024.0), 1),
                     pct(100 * r.scores.t1), pct(100 * r.scores.t2),
                     fmt(r.scores.t3, 2), pct(r.scores.t4_mape)});
      json_c << (json_c.tellp() > 0 ? ",\n" : "") << "    {\"arm\": \""
             << arm.name << "\", \"designs\": " << r.designs
             << ", \"gates\": " << r.gates << ", \"cones\": " << r.cones
             << ", \"expressions\": " << r.expressions
             << ", \"shards\": " << r.shards
             << ", \"shard_bytes\": " << r.shard_bytes << ", "
             << json_scores(r.scores) << "}";
    }
    table.print(std::cout);
  }

  std::ofstream json("BENCH_fig7_scaling.json");
  json << "{\n  \"bench\": \"fig7_scaling\",\n  \"seeds\": " << kSeeds
       << ",\n  \"model_size\": [\n"
       << json_a.str() << "\n  ],\n  \"data_size\": [\n"
       << json_b.str() << "\n  ],\n  \"corpus_scale\": [\n"
       << json_c.str() << "\n  ]\n}\n";
  std::printf("# JSON written to BENCH_fig7_scaling.json\n");

  std::cout << "# paper shape: larger model tiers, more data, and larger "
               "composed designs all trend upward across tasks\n";
  return 0;
}
