// Reproduces Fig. 5: comparison with pre-trained AIG encoders on the
// AIG-format Task 1 dataset.
//
// Paper reference: NetTAG achieves the highest accuracy/precision/recall/F1,
// ahead of DeepGate3 and FGNN; the standalone ExprLLM is competitive
// (symbolic expressions alone carry much of the functional signal).
#include <iostream>

#include "common.hpp"
#include "tasks/aig_encoders.hpp"

using namespace nettag;

int main() {
  // AIG conversion multiplies node counts ~4x, so use a smaller corpus.
  bench::Setup s = bench::make_setup(/*designs_per_family=*/4);
  AigCompareOptions options;
  AigCompareResult res = run_aig_comparison(*s.model, s.corpus, options, s.rng);

  std::cout << "== Fig. 5: comparison with pre-trained AIG encoders "
               "(AIG-format Task 1) ==\n";
  TextTable table;
  table.set_header({"Encoder", "Acc(%)", "Prec(%)", "Recall(%)", "F1(%)"});
  auto add = [&](const char* name, const ClassificationReport& r) {
    table.add_row({name, pct(100 * r.accuracy), pct(100 * r.precision),
                   pct(100 * r.recall), pct(100 * r.f1)});
  };
  add("FGNN (graph CL)", res.fgnn);
  add("DeepGate3 (sim sup.)", res.deepgate);
  add("ExprLLM only", res.expr_llm_only);
  add("NetTAG", res.nettag);
  table.print(std::cout);
  std::cout << "# paper: NetTAG highest on all metrics; ExprLLM-alone "
               "competitive\n"
            << "# reproduced: NetTAG "
            << (res.nettag.accuracy >= res.fgnn.accuracy &&
                        res.nettag.accuracy >= res.deepgate.accuracy
                    ? "WINS"
                    : "LOSES")
            << " vs both AIG encoders on accuracy\n";
  return 0;
}
