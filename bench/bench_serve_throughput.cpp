// NetTAG-Serve throughput bench: the serving-specific performance claims.
//
// Three runs over the same pre-trained model and request set:
//   * single_client        — one blocking client, cold result cache: every
//                            request is a batch of 1 (the latency floor);
//   * multi_client_batched — many client threads submit concurrently, cold
//                            cache: the batcher groups arrivals into shared
//                            thread-pool regions (the throughput path);
//   * cache_warm           — the single client replays the same requests
//                            against the now-warm content-addressed cache:
//                            no model work, byte-identical replays;
//   * quantized_int8       — one blocking client against a second server
//                            (same weights) serving the int8 packed path,
//                            cold cache (docs/PERFORMANCE.md §6).
// Expectation encoded in the JSON: warm qps strictly above both cold modes.
#include <atomic>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "nn/gemm.hpp"
#include "serve/server.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace nettag;

namespace {

/// Distinct comb netlists: an INV/AND2 ladder of `depth` rungs. Depth is
/// part of the structure, so every depth is a distinct cache entry.
std::string ladder_netlist(int depth) {
  std::string text = "module ladder source synthetic\nport a\nport b\n";
  std::string prev_a = "a", prev_b = "b";
  for (int i = 0; i < depth; ++i) {
    const std::string n1 = "n" + std::to_string(2 * i);
    const std::string n2 = "n" + std::to_string(2 * i + 1);
    text += "gate AND2 " + n1 + " " + prev_a + " " + prev_b + "\n";
    text += "gate INV " + n2 + " " + n1 + "\n";
    prev_a = n1;
    prev_b = n2;
  }
  text += "gate OR2 y " + prev_a + " " + prev_b + " out\nendmodule\n";
  return text;
}

struct RunResult {
  std::string mode;
  std::size_t requests = 0;
  double seconds = 0.0;
  double qps() const { return requests / std::max(seconds, 1e-9); }
  double mean_batch = 1.0;
};

RunResult run_single(serve::Server& server,
                     const std::vector<serve::Request>& reqs,
                     const char* mode) {
  RunResult r;
  r.mode = mode;
  Timer t;
  for (const serve::Request& req : reqs) {
    const serve::Response resp = server.submit(req);
    if (!resp.ok()) {
      std::fprintf(stderr, "bench: request failed: %s\n",
                   resp.error_message.c_str());
      std::exit(1);
    }
  }
  r.seconds = t.seconds();
  r.requests = reqs.size();
  return r;
}

RunResult run_multi(serve::Server& server,
                    const std::vector<serve::Request>& reqs, int clients) {
  RunResult r;
  r.mode = "multi_client_batched";
  std::atomic<std::size_t> next{0};
  Timer t;
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= reqs.size()) return;
        const serve::Response resp = server.submit(reqs[i]);
        if (!resp.ok()) {
          std::fprintf(stderr, "bench: request failed: %s\n",
                       resp.error_message.c_str());
          std::exit(1);
        }
      }
    });
  }
  for (std::thread& th : pool) th.join();
  r.seconds = t.seconds();
  r.requests = reqs.size();
  return r;
}

}  // namespace

int main() {
  // Small model, brief pre-training: the bench measures serving overheads,
  // not training quality.
  PretrainOptions po;
  po.expr_steps = 8;
  po.tag_steps = 6;
  po.aux_steps = 0;
  po.max_expressions = 160;
  po.max_cones = 16;
  po.objective_align = false;
  NetTagConfig mc;
  mc.expr_llm = TextEncoderConfig::tiny();
  bench::Setup setup = bench::make_setup(1, po, mc);

  // The quantized arm needs a second model with identical weights; round-trip
  // through a checkpoint rather than pre-training twice.
  const std::string ckpt = "/tmp/nettag_bench_serve_ckpt";
  save_checkpoint(*setup.model, ckpt);

  serve::ServerConfig sc;
  sc.cache_entries = 512;
  serve::Server server(sc, std::move(setup.model));

  serve::ServerConfig qc = sc;
  qc.quantize = true;
  serve::Server quant_server(qc, load_checkpoint(ckpt));

  constexpr int kDistinct = 48;
  std::vector<serve::Request> reqs;
  reqs.reserve(kDistinct);
  for (int d = 0; d < kDistinct; ++d) {
    serve::Request r;
    r.op = serve::Op::kEmbedGates;
    r.netlist_text = ladder_netlist(2 + d % 12);
    // Perturb structure so every request is a distinct cache entry even at
    // equal depth.
    for (int x = 0; x < d / 12; ++x) {
      r.netlist_text.insert(r.netlist_text.find("endmodule"),
                            "gate INV extra" + std::to_string(x) + " y\n");
    }
    reqs.push_back(std::move(r));
  }

  std::vector<RunResult> results;

  // Cold single-client.
  results.push_back(run_single(server, reqs, "single_client"));
  const auto single_snap = server.metrics().snapshot();

  // Cold multi-client: fresh cache, same requests, 8 client threads.
  server.cache().clear();
  results.push_back(run_multi(server, reqs, 8));
  {
    const auto snap = server.metrics().snapshot();
    const std::size_t new_batches = snap.batches - single_snap.batches;
    results.back().mean_batch =
        new_batches ? static_cast<double>(reqs.size()) / new_batches : 1.0;
  }

  // Warm: cache now holds every request from the multi run.
  results.push_back(run_single(server, reqs, "cache_warm"));

  // Int8 packed weights, cold cache, single client (directly comparable to
  // the single_client fp32 arm).
  results.push_back(run_single(quant_server, reqs, "quantized_int8"));

  TextTable table;
  table.set_header({"Mode", "Requests", "Seconds", "QPS", "Mean batch"});
  for (const RunResult& r : results) {
    char qps[32], sec[32], mb[32];
    std::snprintf(sec, sizeof(sec), "%.3f", r.seconds);
    std::snprintf(qps, sizeof(qps), "%.1f", r.qps());
    std::snprintf(mb, sizeof(mb), "%.2f", r.mean_batch);
    table.add_row({r.mode, std::to_string(r.requests), sec, qps, mb});
  }
  table.print(std::cout);

  const bool warm_faster = results[2].qps() > results[0].qps() &&
                           results[2].qps() > results[1].qps();
  std::cout << "# cache-warm throughput " << (warm_faster ? "exceeds" : "DOES NOT exceed")
            << " both cold modes\n";

  std::ofstream json("BENCH_serve_throughput.json");
  json << "{\n  \"bench\": \"serve_throughput\",\n  \"simd\": \""
       << simd_backend_name() << "\",\n  \"distinct_requests\": " << kDistinct
       << ",\n  \"runs\": [";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    json << (i ? "," : "") << "\n    {\"mode\": \"" << r.mode
         << "\", \"requests\": " << r.requests << ", \"seconds\": "
         << r.seconds << ", \"qps\": " << r.qps()
         << ", \"mean_batch\": " << r.mean_batch << "}";
  }
  json << "\n  ],\n  \"warm_faster_than_cold\": "
       << (warm_faster ? "true" : "false") << "\n}\n";
  std::cout << "# JSON written to BENCH_serve_throughput.json\n";
  for (const char* suffix : {".ckpt", ".exprllm.bin", ".tagformer.bin"}) {
    std::remove((ckpt + suffix).c_str());
  }
  return warm_faster ? 0 : 1;
}
