// Component micro-benchmarks: throughput of the pipeline stages the paper's
// runtime analysis attributes cost to (Table VI discussion) plus the k-hop
// sweep behind the paper's footnote 3 ("we choose 2-hop to balance the
// expression expansion and runtime").
//
// The custom main first times the GEMM kernel backends head-to-head
// (scalar vs AVX2 vs int8-packed, docs/PERFORMANCE.md §6) and writes the
// machine-readable snapshot BENCH_micro_components.json to the working
// directory, then hands over to the google-benchmark suite for the
// pipeline-stage benches.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/nettag.hpp"
#include "core/tag.hpp"
#include "expr/tokenizer.hpp"
#include "expr/transform.hpp"
#include "netlist/aig.hpp"
#include "netlist/cone.hpp"
#include "nn/gemm.hpp"
#include "nn/packed.hpp"
#include "physical/flow.hpp"
#include "rtlgen/generator.hpp"
#include "util/timer.hpp"

using namespace nettag;

namespace {

const Netlist& sample_netlist() {
  static const Netlist nl = [] {
    Rng rng(99);
    return generate_design(family_profile("vexriscv"), rng, "micro").netlist;
  }();
  return nl;
}

void BM_KhopExpression(benchmark::State& state) {
  const Netlist& nl = sample_netlist();
  const int k = static_cast<int>(state.range(0));
  std::size_t total_size = 0, count = 0;
  for (auto _ : state) {
    for (const Gate& g : nl.gates()) {
      if (gate_class_of(g.type) < 0) continue;
      ExprPtr e = khop_expression(nl, g.id, k);
      total_size += e->size();
      ++count;
      benchmark::DoNotOptimize(e);
    }
  }
  state.counters["avg_expr_nodes"] =
      static_cast<double>(total_size) / static_cast<double>(std::max<std::size_t>(count, 1));
}
BENCHMARK(BM_KhopExpression)->Arg(1)->Arg(2)->Arg(3);

void BM_EquivalenceTransform(benchmark::State& state) {
  Rng rng(5);
  auto e = parse_expr("!((a^b)|((c&d)^!(a|d)))");
  for (auto _ : state) {
    benchmark::DoNotOptimize(random_equivalent(e, rng, 3));
  }
}
BENCHMARK(BM_EquivalenceTransform);

void BM_ConeChunking(benchmark::State& state) {
  const Netlist& nl = sample_netlist();
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract_register_cones(nl, 120));
  }
}
BENCHMARK(BM_ConeChunking);

void BM_TagBuild(benchmark::State& state) {
  const Netlist& nl = sample_netlist();
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_tag(nl, 2));
  }
}
BENCHMARK(BM_TagBuild);

void BM_Tokenizer(benchmark::State& state) {
  const std::string text =
      "gate U3 type nor2 phys area b2 leak b3 expr U3 = !((R1^R2)|!R2)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenize_text(text));
  }
}
BENCHMARK(BM_Tokenizer);

void BM_ExprLlmEncode(benchmark::State& state) {
  static NetTag model(NetTagConfig{}, 7);
  const Netlist& nl = sample_netlist();
  const TagGraph tag = build_tag(nl, 2);
  for (auto _ : state) {
    model.clear_text_cache();
    benchmark::DoNotOptimize(model.input_features(tag, Mat()));
  }
  state.counters["gates"] = static_cast<double>(nl.size());
}
BENCHMARK(BM_ExprLlmEncode);

void BM_TagFormerForward(benchmark::State& state) {
  static NetTag model(NetTagConfig{}, 7);
  const Netlist& nl = sample_netlist();
  const TagGraph tag = build_tag(nl, 2);
  const Mat feats = model.input_features(tag, Mat());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward_features(feats, tag.edges));
  }
  state.counters["nodes"] = static_cast<double>(nl.size());
}
BENCHMARK(BM_TagFormerForward);

void BM_PhysicalFlow(benchmark::State& state) {
  const Netlist& nl = sample_netlist();
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_physical_flow(nl, rng, /*optimize=*/false, 0.0,
                          static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_PhysicalFlow)->Arg(2)->Arg(8)->Arg(32);

void BM_AigConversion(benchmark::State& state) {
  const Netlist& nl = sample_netlist();
  for (auto _ : state) {
    benchmark::DoNotOptimize(to_aig(nl));
  }
}
BENCHMARK(BM_AigConversion);

// --- GEMM backend head-to-head (hand-rolled: needs backend switching) --------

struct GemmResult {
  std::string kernel;   // "gemm_nn" | "gemm_nt" | "gemm_tn" | "packed_int8"
  std::string backend;  // "scalar" | "avx2"
  int n, k, m;
  double gflops = 0.0;
};

Mat bench_mat(int rows, int cols, Rng& rng) {
  Mat x(rows, cols);
  for (float& v : x.v) v = static_cast<float>(rng.normal(0.0, 1.0));
  return x;
}

/// Times `fn` (one full C += A*B pass per call) until ~0.2s elapse and
/// returns GFLOP/s for a 2*n*k*m-flop product.
template <typename Fn>
double time_gflops(int n, int k, int m, Fn&& fn) {
  const double flops = 2.0 * n * k * m;
  fn();  // warm-up (first-touch, dispatch resolution)
  int iters = 0;
  Timer t;
  do {
    fn();
    ++iters;
  } while (t.seconds() < 0.2);
  return flops * iters / t.seconds() / 1e9;
}

/// Shapes matching the model's real products: d_model-sized encoder blocks
/// and the wide token-batch panels of the text encoder.
const struct { int n, k, m; } kGemmShapes[] = {
    {64, 64, 64}, {256, 128, 128}, {512, 64, 256}};

std::vector<GemmResult> run_gemm_benches() {
  std::vector<GemmResult> out;
  Rng rng(42);
  const SimdBackend saved = simd_backend();
  for (const auto& s : kGemmShapes) {
    const Mat a = bench_mat(s.n, s.k, rng);
    const Mat b = bench_mat(s.k, s.m, rng);
    const Mat g = bench_mat(s.n, s.m, rng);
    const PackedMat pb = pack_int8(b);
    std::vector<SimdBackend> backends{SimdBackend::kScalar};
    if (simd_avx2_supported()) backends.push_back(SimdBackend::kAvx2);
    for (SimdBackend backend : backends) {
      set_simd_backend(backend);
      const char* name = simd_backend_name(backend);
      Mat c(s.n, s.m), ca(s.n, s.k), cb(s.k, s.m);
      out.push_back({"gemm_nn", name, s.n, s.k, s.m,
                     time_gflops(s.n, s.k, s.m, [&] {
                       gemm_nn(s.n, s.k, s.m, a.v.data(), b.v.data(),
                               c.v.data());
                     })});
      out.push_back({"gemm_nt", name, s.n, s.k, s.m,
                     time_gflops(s.n, s.k, s.m, [&] {
                       gemm_nt(s.n, s.k, s.m, g.v.data(), b.v.data(),
                               ca.v.data());
                     })});
      out.push_back({"gemm_tn", name, s.n, s.k, s.m,
                     time_gflops(s.n, s.k, s.m, [&] {
                       gemm_tn(s.n, s.k, s.m, a.v.data(), g.v.data(),
                               cb.v.data());
                     })});
      Mat cq(s.n, s.m);
      out.push_back({"packed_int8", name, s.n, s.k, s.m,
                     time_gflops(s.n, s.k, s.m,
                                 [&] { packed_matmul(a, pb, &cq); })});
    }
  }
  set_simd_backend(saved);
  return out;
}

/// Geometric-mean AVX2/scalar speedup for one kernel across shapes.
double speedup_of(const std::vector<GemmResult>& rs, const std::string& kernel) {
  double log_sum = 0.0;
  int pairs = 0;
  for (const GemmResult& r : rs) {
    if (r.kernel != kernel || r.backend != "avx2") continue;
    for (const GemmResult& s : rs) {
      if (s.kernel == kernel && s.backend == "scalar" && s.n == r.n &&
          s.k == r.k && s.m == r.m && s.gflops > 0) {
        log_sum += std::log(r.gflops / s.gflops);
        ++pairs;
      }
    }
  }
  return pairs ? std::exp(log_sum / pairs) : 0.0;
}

void write_gemm_json(const std::vector<GemmResult>& rs) {
  std::ofstream json("BENCH_micro_components.json");
  json << "{\n  \"bench\": \"micro_components\",\n  \"simd_supported\": "
       << (simd_avx2_supported() ? "true" : "false")
       << ",\n  \"default_backend\": \"" << simd_backend_name()
       << "\",\n  \"gemm\": [";
  for (std::size_t i = 0; i < rs.size(); ++i) {
    const GemmResult& r = rs[i];
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", r.gflops);
    json << (i ? "," : "") << "\n    {\"kernel\": \"" << r.kernel
         << "\", \"backend\": \"" << r.backend << "\", \"n\": " << r.n
         << ", \"k\": " << r.k << ", \"m\": " << r.m
         << ", \"gflops\": " << buf << "}";
  }
  char nn[32], nt[32], tn[32];
  std::snprintf(nn, sizeof(nn), "%.2f", speedup_of(rs, "gemm_nn"));
  std::snprintf(nt, sizeof(nt), "%.2f", speedup_of(rs, "gemm_nt"));
  std::snprintf(tn, sizeof(tn), "%.2f", speedup_of(rs, "gemm_tn"));
  json << "\n  ],\n  \"avx2_speedup_geomean\": {\"gemm_nn\": " << nn
       << ", \"gemm_nt\": " << nt << ", \"gemm_tn\": " << tn << "}\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<GemmResult> gemm = run_gemm_benches();
  for (const GemmResult& r : gemm) {
    std::printf("# %-12s %-6s %4dx%3dx%3d  %8.3f GFLOP/s\n", r.kernel.c_str(),
                r.backend.c_str(), r.n, r.k, r.m, r.gflops);
  }
  if (simd_avx2_supported()) {
    std::printf("# avx2/scalar geomean speedup: nn %.2fx nt %.2fx tn %.2fx\n",
                speedup_of(gemm, "gemm_nn"), speedup_of(gemm, "gemm_nt"),
                speedup_of(gemm, "gemm_tn"));
  }
  write_gemm_json(gemm);
  std::printf("# JSON written to BENCH_micro_components.json\n");

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
