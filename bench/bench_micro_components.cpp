// Component micro-benchmarks (google-benchmark): throughput of the pipeline
// stages the paper's runtime analysis attributes cost to (Table VI
// discussion) plus the k-hop sweep behind the paper's footnote 3 ("we choose
// 2-hop to balance the expression expansion and runtime").
#include <benchmark/benchmark.h>

#include "core/nettag.hpp"
#include "core/tag.hpp"
#include "expr/tokenizer.hpp"
#include "expr/transform.hpp"
#include "netlist/aig.hpp"
#include "netlist/cone.hpp"
#include "physical/flow.hpp"
#include "rtlgen/generator.hpp"

using namespace nettag;

namespace {

const Netlist& sample_netlist() {
  static const Netlist nl = [] {
    Rng rng(99);
    return generate_design(family_profile("vexriscv"), rng, "micro").netlist;
  }();
  return nl;
}

void BM_KhopExpression(benchmark::State& state) {
  const Netlist& nl = sample_netlist();
  const int k = static_cast<int>(state.range(0));
  std::size_t total_size = 0, count = 0;
  for (auto _ : state) {
    for (const Gate& g : nl.gates()) {
      if (gate_class_of(g.type) < 0) continue;
      ExprPtr e = khop_expression(nl, g.id, k);
      total_size += e->size();
      ++count;
      benchmark::DoNotOptimize(e);
    }
  }
  state.counters["avg_expr_nodes"] =
      static_cast<double>(total_size) / static_cast<double>(std::max<std::size_t>(count, 1));
}
BENCHMARK(BM_KhopExpression)->Arg(1)->Arg(2)->Arg(3);

void BM_EquivalenceTransform(benchmark::State& state) {
  Rng rng(5);
  auto e = parse_expr("!((a^b)|((c&d)^!(a|d)))");
  for (auto _ : state) {
    benchmark::DoNotOptimize(random_equivalent(e, rng, 3));
  }
}
BENCHMARK(BM_EquivalenceTransform);

void BM_ConeChunking(benchmark::State& state) {
  const Netlist& nl = sample_netlist();
  for (auto _ : state) {
    benchmark::DoNotOptimize(extract_register_cones(nl, 120));
  }
}
BENCHMARK(BM_ConeChunking);

void BM_TagBuild(benchmark::State& state) {
  const Netlist& nl = sample_netlist();
  for (auto _ : state) {
    benchmark::DoNotOptimize(build_tag(nl, 2));
  }
}
BENCHMARK(BM_TagBuild);

void BM_Tokenizer(benchmark::State& state) {
  const std::string text =
      "gate U3 type nor2 phys area b2 leak b3 expr U3 = !((R1^R2)|!R2)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenize_text(text));
  }
}
BENCHMARK(BM_Tokenizer);

void BM_ExprLlmEncode(benchmark::State& state) {
  static NetTag model(NetTagConfig{}, 7);
  const Netlist& nl = sample_netlist();
  const TagGraph tag = build_tag(nl, 2);
  for (auto _ : state) {
    model.clear_text_cache();
    benchmark::DoNotOptimize(model.input_features(tag, Mat()));
  }
  state.counters["gates"] = static_cast<double>(nl.size());
}
BENCHMARK(BM_ExprLlmEncode);

void BM_TagFormerForward(benchmark::State& state) {
  static NetTag model(NetTagConfig{}, 7);
  const Netlist& nl = sample_netlist();
  const TagGraph tag = build_tag(nl, 2);
  const Mat feats = model.input_features(tag, Mat());
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.forward_features(feats, tag.edges));
  }
  state.counters["nodes"] = static_cast<double>(nl.size());
}
BENCHMARK(BM_TagFormerForward);

void BM_PhysicalFlow(benchmark::State& state) {
  const Netlist& nl = sample_netlist();
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run_physical_flow(nl, rng, /*optimize=*/false, 0.0,
                          static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_PhysicalFlow)->Arg(2)->Arg(8)->Arg(32);

void BM_AigConversion(benchmark::State& state) {
  const Netlist& nl = sample_netlist();
  for (auto _ : state) {
    benchmark::DoNotOptimize(to_aig(nl));
  }
}
BENCHMARK(BM_AigConversion);

}  // namespace

BENCHMARK_MAIN();
