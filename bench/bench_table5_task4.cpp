// Reproduces Table V: Task 4 — overall circuit area/power prediction at the
// netlist stage, in both label scenarios (w/o and w/ layout optimization).
//
// Paper reference:
//   Area  w/o opt: tool R .99 MAPE  5 | GNN R .99 MAPE  5 | NetTAG R .99 MAPE  4
//   Area  w/  opt: tool R .95 MAPE 34 | GNN R .95 MAPE 18 | NetTAG R .96 MAPE 11
//   Power w/o opt: tool R .99 MAPE 34 | GNN R .99 MAPE 12 | NetTAG R .99 MAPE  8
//   Power w/  opt: tool R .73 MAPE 38 | GNN R .76 MAPE 19 | NetTAG R .86 MAPE 12
// Shape to reproduce: the synthesis tool degrades sharply once layout
// optimization is on (and is always bad for power); NetTAG has the lowest
// MAPE in each row.
#include <iostream>

#include "common.hpp"
#include "tasks/task4.hpp"

using namespace nettag;

int main() {
  // Task 4 regresses whole circuits, so it needs a larger design corpus.
  bench::Setup s = bench::make_setup(/*designs_per_family=*/10);
  Task4Options options;
  Task4Result res = run_task4(*s.model, s.corpus, options, s.rng);

  std::cout << "== Table V: Task4 overall circuit power/area prediction ==\n";
  TextTable table;
  table.set_header({"Target", "Scenario", "Tool R", "MAPE(%)", "GNN R",
                    "MAPE(%)", "NetTAG R", "MAPE(%)"});
  auto add = [&](const char* target, const char* scenario, const Task4Cell& c) {
    table.add_row({target, scenario, fmt(c.tool.pearson_r, 2), pct(c.tool.mape),
                   fmt(c.gnn.pearson_r, 2), pct(c.gnn.mape),
                   fmt(c.nettag.pearson_r, 2), pct(c.nettag.mape)});
  };
  add("Area", "w/o opt", res.area_wo_opt);
  add("Area", "w/ opt", res.area_w_opt);
  add("Power", "w/o opt", res.power_wo_opt);
  add("Power", "w/ opt", res.power_w_opt);
  table.print(std::cout);

  const int nettag_best =
      (res.area_wo_opt.nettag.mape <= res.area_wo_opt.tool.mape) +
      (res.area_w_opt.nettag.mape <= res.area_w_opt.tool.mape) +
      (res.power_wo_opt.nettag.mape <= res.power_wo_opt.tool.mape) +
      (res.power_w_opt.nettag.mape <= res.power_w_opt.tool.mape);
  std::cout << "# paper: NetTAG has the lowest MAPE in all 4 rows\n"
            << "# reproduced: NetTAG beats the EDA tool estimate in "
            << nettag_best << "/4 rows\n";
  return 0;
}
