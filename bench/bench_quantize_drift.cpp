// Int8 accuracy-drift audit: Tasks 1-4 evaluated twice on the same weights —
// once through the fp32 kernels, once with the encoder's int8 packed-weight
// copies attached (exactly what `nettag_serve --quantize` serves). Identical
// seeds per arm give identical corpus splits and head initializations, so the
// only varying factor is the numeric path of the frozen encoder.
//
// Output: BENCH_quantize_drift.json in the working directory, with each
// task's headline metric per arm and the signed delta (int8 - fp32). The
// documented budget (docs/PERFORMANCE.md §5) bounds DEGRADATION: int8 may
// score below fp32 by at most kAccuracyBudget on accuracy-like metrics and
// kPearsonBudget on correlations; the exit code reports a violation.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "nn/gemm.hpp"
#include "nn/packed.hpp"
#include "tasks/task1.hpp"
#include "tasks/task2.hpp"
#include "tasks/task3.hpp"
#include "tasks/task4.hpp"

using namespace nettag;

namespace {

constexpr double kAccuracyBudget = 0.05;  ///< |Δ| bound for [0,1] metrics
constexpr double kPearsonBudget = 0.10;   ///< |Δ| bound for correlations

struct DriftRow {
  std::string task;
  std::string metric;
  double fp32 = 0.0;
  double int8 = 0.0;
  double budget = kAccuracyBudget;
  /// Signed: negative means int8 scored below fp32.
  double delta() const { return int8 - fp32; }
  /// The budget bounds DEGRADATION. All tracked metrics are
  /// higher-is-better, and head fine-tuning on a tiny corpus is noisy in
  /// both directions — an int8 arm that happens to score above fp32 is
  /// sampling noise, not quantization damage.
  bool within_budget() const { return delta() >= -budget; }
};

/// One full Task 1-4 sweep at fixed seeds. The caller flips the numeric
/// path (pack / unpack) between sweeps.
struct SweepResult {
  Task1Result t1;
  Task2Result t2;
  Task3Result t3;
  Task4Result t4;
};

SweepResult run_sweep(NetTag& model, const Corpus& corpus) {
  SweepResult r;
  Task1Options o1;
  o1.num_test_designs = 3;
  o1.gnn_steps = 40;
  Task2Options o2;
  o2.num_test_designs = 3;
  o2.gnn_steps = 40;
  Task3Options o3;
  o3.num_test_designs = 3;
  o3.gnn_steps = 60;
  Task4Options o4;
  o4.gnn_steps = 40;
  // Fresh deterministic Rng per task: both arms see identical splits.
  Rng r1(1001), r2(1002), r3(1003), r4(1004);
  r.t1 = run_task1(model, corpus, o1, r1);
  r.t2 = run_task2(model, corpus, o2, r2);
  r.t3 = run_task3(model, corpus, o3, r3);
  r.t4 = run_task4(model, corpus, o4, r4);
  return r;
}

}  // namespace

int main() {
  PretrainOptions po;
  po.expr_steps = 10;
  po.tag_steps = 8;
  po.aux_steps = 0;
  po.max_expressions = 160;
  po.max_cones = 16;
  NetTagConfig mc;
  mc.expr_llm = TextEncoderConfig::tiny();
  bench::Setup setup = bench::make_setup(2, po, mc);
  NetTag& model = *setup.model;

  std::printf("# fp32 arm (backend %s)...\n", simd_backend_name());
  const SweepResult fp32 = run_sweep(model, setup.corpus);

  // Attach the int8 copies and drop the fp32-computed text-embedding cache
  // so the second arm recomputes everything through the packed path.
  const PackStats ps = pack_model_weights(model);
  model.clear_text_cache();
  std::printf("# int8 arm (%zu matrices packed, %zu skipped, %.1f KiB)...\n",
              ps.packed, ps.skipped, static_cast<double>(ps.bytes) / 1024.0);
  const SweepResult int8 = run_sweep(model, setup.corpus);

  std::vector<DriftRow> rows = {
      {"task1_gate_function", "accuracy", fp32.t1.nettag_avg.accuracy,
       int8.t1.nettag_avg.accuracy, kAccuracyBudget},
      {"task1_gate_function", "f1", fp32.t1.nettag_avg.f1,
       int8.t1.nettag_avg.f1, kAccuracyBudget},
      {"task2_state_registers", "balanced_accuracy",
       fp32.t2.nettag_avg.balanced_accuracy,
       int8.t2.nettag_avg.balanced_accuracy, kAccuracyBudget},
      {"task3_slack", "pearson_r", fp32.t3.nettag_avg.pearson_r,
       int8.t3.nettag_avg.pearson_r, kPearsonBudget},
      {"task4_area_w_opt", "pearson_r", fp32.t4.area_w_opt.nettag.pearson_r,
       int8.t4.area_w_opt.nettag.pearson_r, kPearsonBudget},
      {"task4_power_w_opt", "pearson_r", fp32.t4.power_w_opt.nettag.pearson_r,
       int8.t4.power_w_opt.nettag.pearson_r, kPearsonBudget},
  };

  TextTable table;
  table.set_header({"Task", "Metric", "fp32", "int8", "Delta", "Budget"});
  bool all_within = true;
  for (const DriftRow& r : rows) {
    char f[32], q[32], d[32], b[32];
    std::snprintf(f, sizeof(f), "%.4f", r.fp32);
    std::snprintf(q, sizeof(q), "%.4f", r.int8);
    std::snprintf(d, sizeof(d), "%+.4f", r.delta());
    std::snprintf(b, sizeof(b), "-%.2f", r.budget);
    table.add_row({r.task, r.metric, f, q, d, b});
    all_within = all_within && r.within_budget();
  }
  table.print(std::cout);
  std::cout << "# int8 drift " << (all_within ? "WITHIN" : "EXCEEDS")
            << " the documented budget\n";

  std::ofstream json("BENCH_quantize_drift.json");
  json << "{\n  \"bench\": \"quantize_drift\",\n  \"simd\": \""
       << simd_backend_name() << "\",\n  \"packed_matrices\": " << ps.packed
       << ",\n  \"packed_bytes\": " << ps.bytes
       << ",\n  \"accuracy_budget\": " << kAccuracyBudget
       << ",\n  \"pearson_budget\": " << kPearsonBudget << ",\n  \"rows\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const DriftRow& r = rows[i];
    char f[32], q[32], d[32];
    std::snprintf(f, sizeof(f), "%.6f", r.fp32);
    std::snprintf(q, sizeof(q), "%.6f", r.int8);
    std::snprintf(d, sizeof(d), "%.6f", r.delta());
    json << (i ? "," : "") << "\n    {\"task\": \"" << r.task
         << "\", \"metric\": \"" << r.metric << "\", \"fp32\": " << f
         << ", \"int8\": " << q << ", \"delta\": " << d
         << ", \"budget\": " << r.budget << ", \"within_budget\": "
         << (r.within_budget() ? "true" : "false") << "}";
  }
  json << "\n  ],\n  \"all_within_budget\": " << (all_within ? "true" : "false")
       << "\n}\n";
  std::cout << "# JSON written to BENCH_quantize_drift.json\n";
  return all_within ? 0 : 1;
}
