// Reproduces Table VI: runtime comparison — the physical-design flow
// ("EDA tool P&R") vs NetTAG's preprocessing (cone chunking + TAG
// conversion) and inference (ExprLLM text encoding, TAGFormer forward).
//
// Paper reference (minutes): P&R 164-288 per family vs NetTAG totals 6-31 —
// roughly a 10x speedup, with preprocessing and ExprLLM inference dominating
// NetTAG's side. Here both sides are measured wall-clock on the simulated
// substrate; the P&R flow runs at sign-off placement effort.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "core/nettag.hpp"
#include "core/pretrain.hpp"
#include "core/tag.hpp"
#include "netlist/cone.hpp"
#include "physical/flow.hpp"
#include "rtlgen/generator.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace nettag;

namespace {

/// Thread-scaling sweep: one full pre-training epoch (both steps) per pool
/// width, on a corpus built once. Emitted as JSON so successive PRs have a
/// machine-readable perf trajectory.
void run_thread_sweep(std::ostream& json_out) {
  Rng corpus_rng(91);
  CorpusOptions co;
  co.designs_per_family = 1;
  const Corpus corpus = build_corpus(co, corpus_rng);
  PretrainOptions po;
  po.expr_steps = 8;
  po.tag_steps = 6;
  po.aux_steps = 4;
  po.max_cones = 16;
  po.max_expressions = 200;

  const int hc = static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
  const int prev_width = parallel_width();
  std::vector<int> widths{1, 2, 4};
  if (std::find(widths.begin(), widths.end(), hc) == widths.end()) {
    widths.push_back(hc);
  }

  std::cout << "\n== Thread scaling: pretrain epoch wall-clock ==\n";
  TextTable table;
  table.set_header({"Threads", "Seconds", "Speedup vs 1T"});
  json_out << "{\n  \"bench\": \"pretrain_epoch_thread_sweep\",\n"
           << "  \"hardware_concurrency\": " << hc << ",\n  \"runs\": [";
  double serial_seconds = 0.0;
  for (std::size_t w = 0; w < widths.size(); ++w) {
    ThreadPool::instance().set_width(widths[w]);
    // Fresh model + rng per width: every run trains from the same state.
    NetTag model(NetTagConfig{}, 7);
    Rng rng(123);
    Timer t;
    const PretrainReport rep = pretrain(model, corpus, po, rng);
    const double secs = t.seconds();
    if (widths[w] == 1) serial_seconds = secs;
    const double speedup = serial_seconds > 0 ? serial_seconds / secs : 1.0;
    table.add_row({std::to_string(widths[w]), fmt(secs, 2), fmt(speedup, 2) + "x"});
    json_out << (w ? "," : "") << "\n    {\"threads\": " << widths[w]
             << ", \"seconds\": " << secs << ", \"speedup\": " << speedup
             << ", \"tag_loss_last\": " << rep.tag_loss_last << "}";
  }
  json_out << "\n  ]\n}\n";
  ThreadPool::instance().set_width(prev_width);
  table.print(std::cout);
  if (hc == 1) {
    std::cout << "# note: hardware_concurrency() == 1 on this machine — the\n"
                 "# sweep exercises the threaded code paths but cannot show\n"
                 "# real speedup; run on a multi-core host for the scaling\n"
                 "# numbers.\n";
  }
}

}  // namespace

int main() {
  Rng rng(20250705);
  NetTag model(NetTagConfig{}, 7);

  std::cout << "== Table VI: runtime comparison (seconds; paper reports "
               "minutes at full scale) ==\n";
  TextTable table;
  table.set_header({"Source", "P&R", "Preproc", "ExprLLM", "TAGFormer",
                    "NetTAG Total", "Speedup"});

  double pr_all = 0, ours_all = 0;
  for (const FamilyProfile& profile : benchmark_families()) {
    double pr_time = 0, pre_time = 0, expr_time = 0, tag_time = 0;
    const int kDesigns = 3;
    for (int i = 0; i < kDesigns; ++i) {
      GeneratedDesign d = generate_design(profile, rng, profile.name + "_rt" +
                                                            std::to_string(i));
      // EDA-tool side: optimizing P&R at sign-off placement effort.
      Timer t;
      run_physical_flow(d.netlist, rng, /*optimize=*/true, 0.0,
                        /*placement_passes=*/60);
      pr_time += t.seconds();

      // NetTAG side. Preprocessing: cone chunking + TAG conversion.
      t.reset();
      const auto cones = extract_register_cones(d.netlist, 120);
      std::vector<TagGraph> tags;
      tags.reserve(cones.size());
      for (const RegisterCone& rc : cones) tags.push_back(build_tag(rc.cone, 2));
      pre_time += t.seconds();

      // ExprLLM inference: encode every gate attribute (cold cache).
      model.clear_text_cache();
      t.reset();
      std::vector<Mat> feats;
      feats.reserve(tags.size());
      for (const TagGraph& tag : tags) {
        feats.push_back(model.input_features(tag, Mat()));
      }
      expr_time += t.seconds();

      // TAGFormer inference.
      t.reset();
      for (std::size_t c = 0; c < tags.size(); ++c) {
        (void)model.forward_features(feats[c], tags[c].edges);
      }
      tag_time += t.seconds();
    }
    const double ours = pre_time + expr_time + tag_time;
    pr_all += pr_time;
    ours_all += ours;
    table.add_row({profile.name, fmt(pr_time, 2), fmt(pre_time, 2),
                   fmt(expr_time, 2), fmt(tag_time, 2), fmt(ours, 2),
                   fmt(pr_time / std::max(ours, 1e-9), 2) + "x"});
  }
  table.add_separator();
  table.add_row({"Total", fmt(pr_all, 2), "", "", "", fmt(ours_all, 2),
                 fmt(pr_all / std::max(ours_all, 1e-9), 2) + "x"});
  table.print(std::cout);
  std::cout << "# paper: ~10x speedup of NetTAG inference over P&R (hours-scale flows).\n"
               "# note: at this simulator scale the P&R substitute is itself trivially\n"
               "# fast, so the absolute speedup does NOT reproduce; the runtime\n"
               "# decomposition claim (preprocessing + ExprLLM inference dominate\n"
               "# NetTAG, TAGFormer negligible) does.\n";

  std::ofstream json("bench_table6_threads.json");
  run_thread_sweep(json);
  std::cout << "# thread-sweep JSON written to bench_table6_threads.json\n";
  return 0;
}
