// Reproduces Table IV (right): Task 3 — endpoint register slack prediction
// at the netlist stage, NetTAG vs the timing-GNN baseline adapted from [2].
//
// Paper reference: GNN avg R 0.90 / MAPE 17; NetTAG avg R 0.92 / MAPE 15 —
// a small but consistent edge (both are decent because both consume
// netlist-stage timing estimates; the hard part is the layout-optimization
// restructuring).
#include <iostream>

#include "common.hpp"
#include "tasks/task3.hpp"

using namespace nettag;

int main() {
  bench::Setup s = bench::make_setup();
  Task3Options options;
  Task3Result res = run_task3(*s.model, s.corpus, options, s.rng);

  std::cout << "== Table IV (right): Task3 endpoint register slack "
               "prediction ==\n";
  TextTable table;
  table.set_header({"Design", "GNN R", "MAPE(%)", "NetTAG R", "MAPE(%)"});
  auto add = [&](const std::string& name, const RegressionReport& g,
                 const RegressionReport& n) {
    table.add_row({name, fmt(g.pearson_r, 2), pct(g.mape), fmt(n.pearson_r, 2),
                   pct(n.mape)});
  };
  for (const Task3Row& row : res.rows) add(row.design, row.gnn, row.nettag);
  table.add_separator();
  add("Avg.", res.gnn_avg, res.nettag_avg);
  table.print(std::cout);
  std::cout << "# paper: GNN R 0.90 / MAPE 17, NetTAG R 0.92 / MAPE 15 "
               "(close, NetTAG slightly ahead)\n"
            << "# reproduced: NetTAG R " << fmt(res.nettag_avg.pearson_r, 2)
            << " vs GNN R " << fmt(res.gnn_avg.pearson_r, 2) << ", MAPE "
            << pct(res.nettag_avg.mape) << " vs " << pct(res.gnn_avg.mape)
            << "\n";
  return 0;
}
