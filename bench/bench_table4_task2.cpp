// Reproduces Table IV (left): Task 2 — state/data register identification,
// NetTAG vs the ReIGNN-style supervised GCN, per held-out design.
//
// Paper reference: ReIGNN avg sensitivity 46 / balanced accuracy 73;
// NetTAG avg 90 / 86 — a large sensitivity gap because graph-only models
// confuse counters/LFSRs (feedback registers) with FSM state registers.
#include <iostream>

#include "common.hpp"
#include "tasks/task2.hpp"

using namespace nettag;

int main() {
  bench::Setup s = bench::make_setup();
  Task2Options options;
  Task2Result res = run_task2(*s.model, s.corpus, options, s.rng);

  std::cout << "== Table IV (left): Task2 state/data register "
               "identification ==\n";
  TextTable table;
  table.set_header({"Design", "ReIGNN Sens", "Acc", "NetTAG Sens", "Acc"});
  auto add = [&](const std::string& name, const BinaryReport& r,
                 const BinaryReport& n) {
    table.add_row({name, pct(100 * r.sensitivity), pct(100 * r.balanced_accuracy),
                   pct(100 * n.sensitivity), pct(100 * n.balanced_accuracy)});
  };
  for (const Task2Row& row : res.rows) add(row.design, row.reignn, row.nettag);
  table.add_separator();
  add("Avg.", res.reignn_avg, res.nettag_avg);
  table.print(std::cout);
  std::cout << "# paper: ReIGNN sens 46 / acc 73, NetTAG sens 90 / acc 86\n"
            << "# reproduced ordering: NetTAG "
            << (res.nettag_avg.sensitivity >= res.reignn_avg.sensitivity
                    ? "WINS"
                    : "LOSES")
            << " on sensitivity (" << pct(100 * res.nettag_avg.sensitivity)
            << " vs " << pct(100 * res.reignn_avg.sensitivity) << ")\n";
  return 0;
}
